"""Tests for the per-figure experiment drivers (small scales)."""

import numpy as np
import pytest

from repro.pipeline import (
    accuracy_clustering,
    dedupe_factor_model_sweep,
    fig3_session_histogram,
    fig4_duplication,
    fig9_ablation,
    partial_vs_exact,
    scribe_sharding_compression,
    single_node_speedup,
    table2_resource_util,
    table3_reader_bytes,
)


class TestFig3:
    def test_partition_and_batch_stats(self):
        res = fig3_session_histogram(num_sessions=30_000, seed=1)
        assert res.partition_stats["mean"] == pytest.approx(16.5, rel=0.1)
        assert res.partition_stats["max"] > 500  # heavy tail
        assert res.batch_mean_interleaved < 2.0  # paper: 1.15
        assert res.batch_mean_clustered > 8.0  # paper: ~16.5
        assert res.histogram_counts.sum() == 30_000


class TestFig4:
    def test_duplication_bands(self):
        rep = fig4_duplication(num_features=150, num_sessions=4000)
        assert 0.70 < rep.mean_exact < 0.90  # paper: 80.0%
        assert rep.byte_weighted_partial > rep.byte_weighted_exact
        # user features dominate the high-duplication plateau
        top = rep.sorted_exact()[:30]
        assert sum(f.kind.value == "user" for f in top) >= 28


class TestFig9:
    def test_ablation_monotone_stages(self):
        stages = fig9_ablation(scale=0.25, num_sessions=150, seed=2)
        assert [s.label for s in stages][0] == "Baseline B1x"
        norm = [s.normalized for s in stages]
        assert norm[0] == pytest.approx(1.0)
        # CT alone provides no trainer benefit (§6.2 ablation)
        assert norm[1] == pytest.approx(1.0, abs=0.3)
        # each RecD stage improves on CT
        assert norm[2] > norm[1]
        assert norm[3] > norm[2]
        assert norm[4] >= norm[3] * 0.95  # batch growth helps or holds


class TestTable2:
    def test_resource_rows(self):
        rows = table2_resource_util(scale=0.25, num_sessions=150, seed=3)
        by_name = {r.config: r for r in rows}
        base = by_name["Baseline"]
        recd = by_name["RecD"]
        assert base.norm_qps == pytest.approx(1.0)
        assert base.max_mem_util == pytest.approx(0.999, abs=0.01)
        # RecD frees memory and improves throughput + efficiency
        assert recd.max_mem_util < base.max_mem_util * 0.8
        assert recd.norm_qps > 1.2
        assert by_name["RecD + B3x"].norm_qps >= recd.norm_qps
        # bigger embeddings fit in the freed memory
        dbig = by_name["RecD + EMB D1.5x"]
        assert recd.max_mem_util < dbig.max_mem_util <= 1.0
        # bigger dims do more useful work per GPU-second (paper: 1.92x)
        assert dbig.norm_compute_efficiency > recd.norm_compute_efficiency


class TestTable3:
    def test_byte_staircase(self):
        rows = table3_reader_bytes(scale=0.25, num_sessions=150, seed=4)
        by_name = {r.config: r for r in rows}
        base = by_name["Baseline"]
        clus = by_name["with Cluster"]
        ikjt = by_name["with IKJT"]
        # clustering cuts read bytes, leaves send bytes
        assert clus.read_bytes < base.read_bytes * 0.8
        assert clus.send_bytes == pytest.approx(base.send_bytes, rel=0.01)
        # IKJT cuts send bytes, read unchanged vs cluster
        assert ikjt.read_bytes == pytest.approx(clus.read_bytes, rel=0.01)
        assert ikjt.send_bytes < clus.send_bytes


class TestScribe:
    def test_session_sharding_wins(self):
        res = scribe_sharding_compression(scale=0.25, num_sessions=200)
        assert res["session"] > res["random"] * 1.2  # paper: 1.5x relative


class TestSingleNode:
    def test_speedup_positive(self):
        res = single_node_speedup(scale=0.25, num_sessions=150)
        assert res["speedup"] > 1.3  # paper: 2.18x


class TestAccuracy:
    def test_clustering_reduces_repeat_updates(self):
        res = accuracy_clustering(scale=0.25, num_sessions=120, train_batches=4)
        assert (
            res.clustered_repeat_fraction
            < res.interleaved_repeat_fraction
        )
        assert np.isfinite(res.clustered_loss)
        assert np.isfinite(res.interleaved_loss)


class TestDedupeModel:
    def test_model_tracks_measurement(self):
        points = dedupe_factor_model_sweep(seed=5)
        for p in points:
            assert p.measured == pytest.approx(p.modeled, rel=0.25), (
                p.samples_per_session,
                p.d,
            )

    def test_factor_grows_with_s_and_d(self):
        points = dedupe_factor_model_sweep(seed=5)
        get = {
            (p.samples_per_session, p.d): p.modeled for p in points
        }
        assert get[(16, 0.95)] > get[(2, 0.95)]
        assert get[(16, 0.95)] > get[(16, 0.5)]


class TestPartial:
    def test_partial_captures_more(self):
        res = partial_vs_exact(num_sessions=100)
        assert res.partial_factor > res.exact_factor
        assert res.partial_captured_fraction > res.exact_captured_fraction
