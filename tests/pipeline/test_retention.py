"""Tests for rolling-window partition retention: the land→train→age
lifecycle, the guarantee that epochs only ever scan live partitions,
and bit-identity of the retention-free path."""

import pytest

import repro.reader.fleet as fleet_mod
from repro.datagen import rm1
from repro.pipeline import (
    PipelineConfig,
    RecDToggles,
    plan_retention_windows,
    run_pipeline,
)


def _cfg(**kw):
    kw.setdefault("workload", rm1(scale=0.25))
    kw.setdefault("toggles", RecDToggles.baseline())
    kw.setdefault("num_sessions", 120)
    kw.setdefault("seed", 3)
    kw.setdefault("batch_size", 128)
    kw.setdefault("train_batches", 3)
    kw.setdefault("reader_executor", "inprocess")
    return PipelineConfig(**kw)


class TestPlanRetentionWindows:
    def test_slides_one_partition_per_epoch(self):
        assert plan_retention_windows(5, 2, 4) == [
            [0, 1],
            [1, 2],
            [2, 3],
            [3, 4],
        ]

    def test_window_parks_when_stream_exhausted(self):
        assert plan_retention_windows(3, 2, 4) == [
            [0, 1],
            [1, 2],
            [1, 2],
            [1, 2],
        ]

    def test_retain_at_least_num_partitions_never_drops(self):
        assert plan_retention_windows(3, 3, 3) == [[0, 1, 2]] * 3
        assert plan_retention_windows(2, 5, 3) == [[0, 1]] * 3

    def test_single_partition_single_epoch(self):
        assert plan_retention_windows(1, 1, 1) == [[0]]

    def test_validation(self):
        for bad in [(0, 1, 1), (1, 0, 1), (1, 1, 0)]:
            with pytest.raises(ValueError):
                plan_retention_windows(*bad)


class TestRetentionLifecycle:
    def test_land_train_age_end_to_end(self):
        """5-day stream, 2-day window, 4 epochs: each epoch scans the
        sliding window, aged partitions are dropped in order, and every
        partition of the stream eventually lands."""
        res = run_pipeline(
            _cfg(num_partitions=5, train_epochs=4, retain_partitions=2)
        )
        assert res.epoch_partitions == [
            ["p0", "p1"],
            ["p1", "p2"],
            ["p2", "p3"],
            ["p3", "p4"],
        ]
        assert res.dropped_partitions == ["p0", "p1", "p2"]
        assert [p.name for p in res.partitions] == [
            "p0",
            "p1",
            "p2",
            "p3",
            "p4",
        ]
        # the rollup covers everything that ever landed
        assert res.partition.num_rows == res.samples_landed

    def test_epoch_plans_only_reference_live_partitions(self, monkeypatch):
        """The acceptance bar: with retain_partitions=K no epoch plan
        may ever reference a dropped partition.  Spies on the actual
        plan_epoch calls the fleet makes."""
        planned_names: list[list[str]] = []
        real_plan_epoch = fleet_mod.plan_epoch

        def spy(partition_rows, *args, **kwargs):
            planned_names.append([name for name, _ in partition_rows])
            return real_plan_epoch(partition_rows, *args, **kwargs)

        monkeypatch.setattr(fleet_mod, "plan_epoch", spy)
        res = run_pipeline(
            _cfg(num_partitions=6, train_epochs=5, retain_partitions=3)
        )
        expected_windows = plan_retention_windows(6, 3, 5)
        assert planned_names == [
            [f"p{i}" for i in w] for w in expected_windows
        ]
        # no plan ever includes a partition dropped before that epoch
        dropped: set[str] = set()
        for epoch, names in enumerate(planned_names):
            assert not dropped & set(names), (
                f"epoch {epoch} planned dropped partition(s): "
                f"{dropped & set(names)}"
            )
            if epoch + 1 < len(expected_windows):
                next_lo = expected_windows[epoch + 1][0]
                dropped |= {f"p{i}" for i in range(next_lo)}
        assert res.dropped_partitions == sorted(dropped)

    def test_dropped_partition_files_deleted(self):
        """Dropping is real: a retention run ends with only the live
        window's rows still counted in live partitions."""
        res = run_pipeline(
            _cfg(num_partitions=4, train_epochs=3, retain_partitions=1)
        )
        assert res.dropped_partitions == ["p0", "p1"]
        assert res.epoch_partitions == [["p0"], ["p1"], ["p2"]]
        # p3 stays in the stream, unlanded: only 3 epochs elapsed
        assert [p.name for p in res.partitions] == ["p0", "p1", "p2"]

    def test_retaining_everything_matches_non_retention(self):
        """retain_partitions >= num_partitions never drops and must be
        bit-identical to the retention-free path."""
        plain = run_pipeline(_cfg(num_partitions=3, train_epochs=2))
        retained = run_pipeline(
            _cfg(num_partitions=3, train_epochs=2, retain_partitions=3)
        )
        assert retained.training.losses == plain.training.losses
        assert retained.dropped_partitions == []
        assert retained.epoch_partitions == plain.epoch_partitions

    def test_streaming_materialized_equivalent_under_retention(self):
        streamed = run_pipeline(
            _cfg(
                num_partitions=4,
                train_epochs=3,
                retain_partitions=2,
                num_readers=2,
                streaming=True,
            )
        )
        materialized = run_pipeline(
            _cfg(
                num_partitions=4,
                train_epochs=3,
                retain_partitions=2,
                num_readers=2,
                streaming=False,
            )
        )
        assert streamed.training.losses == materialized.training.losses

    def test_width_does_not_change_retention_stream(self):
        wide = run_pipeline(
            _cfg(
                num_partitions=4,
                train_epochs=3,
                retain_partitions=2,
                num_readers=4,
            )
        )
        narrow = run_pipeline(
            _cfg(
                num_partitions=4,
                train_epochs=3,
                retain_partitions=2,
                num_readers=1,
            )
        )
        assert wide.training.losses == narrow.training.losses

    def test_non_retention_epochs_recorded(self):
        res = run_pipeline(_cfg(num_partitions=2, train_epochs=2))
        assert res.epoch_partitions == [["p0", "p1"], ["p0", "p1"]]
        assert res.dropped_partitions == []
        assert res.scaling is None

    def test_undersized_first_window_fails_fast(self):
        with pytest.raises(ValueError, match="too small"):
            run_pipeline(
                _cfg(
                    num_sessions=2,
                    batch_size=100_000,
                    num_partitions=2,
                    train_epochs=2,
                    retain_partitions=1,
                )
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            _cfg(retain_partitions=0)
        with pytest.raises(ValueError):
            _cfg(reader_executor="threads")
