"""Shared dataset, trace, and landed-table fixtures for the test suite.

The reader/pipeline tests all need the same scaffolding — a small schema
with one slow-changing history feature and one fast-changing item
feature, a generated trace, and a partition landed on an in-memory
Hive/DWRF table.  These helpers replace the per-module copies of that
setup; module-level code can import the ``make_*``/``land_samples``
functions (``from tests.conftest import ...``), tests take the fixtures.
"""

from __future__ import annotations

import pytest

from repro.datagen import (
    DatasetSchema,
    DenseFeatureSpec,
    SparseFeatureSpec,
    TraceConfig,
    generate_partition,
    rm1,
)
from repro.etl import cluster_by_session
from repro.storage import HiveTable, TectonicFS

__all__ = [
    "make_reader_schema",
    "make_trace",
    "land_samples",
]


def make_reader_schema(
    hist_avg_length: int = 16,
    hist_change_prob: float = 0.05,
) -> DatasetSchema:
    """The canonical small reader-path schema: a sticky session-level
    ``hist`` feature, a volatile per-sample ``item`` feature, one dense."""
    return DatasetSchema(
        sparse=(
            SparseFeatureSpec(
                "hist",
                avg_length=hist_avg_length,
                change_prob=hist_change_prob,
            ),
            SparseFeatureSpec("item", avg_length=2, change_prob=0.9),
        ),
        dense=(DenseFeatureSpec("d"),),
    )


def make_trace(
    schema: DatasetSchema,
    sessions: int = 60,
    seed: int = 0,
    clustered: bool = False,
):
    """Generate one partition's samples, optionally session-clustered (O2)."""
    samples = generate_partition(schema, sessions, TraceConfig(seed=seed))
    if clustered:
        samples = cluster_by_session(samples)
    return samples


def land_samples(
    schema: DatasetSchema,
    samples,
    rows_per_file: int = 4096,
    stripe_rows: int = 256,
) -> HiveTable:
    """Land ``samples`` as partition ``"p"`` of an in-memory table ``"t"``."""
    table = HiveTable(
        "t",
        schema,
        TectonicFS(),
        rows_per_file=rows_per_file,
        stripe_rows=stripe_rows,
    )
    table.land_partition("p", samples)
    return table


@pytest.fixture
def reader_schema() -> DatasetSchema:
    return make_reader_schema()


@pytest.fixture
def landed_table():
    """Factory fixture: ``landed_table(clustered=..., seed=...)`` returns
    ``(table, samples)`` with the trace landed as partition ``"p"``."""

    def make(
        clustered: bool = False,
        seed: int = 0,
        sessions: int = 60,
        schema: DatasetSchema | None = None,
        rows_per_file: int = 4096,
        stripe_rows: int = 256,
    ):
        schema = schema or make_reader_schema()
        samples = make_trace(
            schema, sessions=sessions, seed=seed, clustered=clustered
        )
        table = land_samples(
            schema,
            samples,
            rows_per_file=rows_per_file,
            stripe_rows=stripe_rows,
        )
        return table, samples

    return make


@pytest.fixture
def rm1_half():
    """The workload most pipeline tests run: RM1 at half scale."""
    return rm1(scale=0.5)
