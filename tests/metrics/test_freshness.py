"""Property suite for :class:`repro.metrics.FreshnessReport`.

Hypothesis drives the invariants the streaming subsystem leans on:
lags are never negative (a batch cannot train before its events
happened), delaying the landing can only make every percentile worse,
the percentile views are ordered (p50 <= p99 <= max), and merge is
associative and order-insensitive — so per-round reports fold into
per-job and tier-wide views in any grouping.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import FreshnessReport

# Modeled event times and clocks: finite floats in a realistic range.
_times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
_event_lists = st.lists(_times, min_size=0, max_size=40)


@settings(max_examples=60, deadline=None)
@given(event_times=_event_lists, trained_at=_times)
def test_lags_are_never_negative(event_times, trained_at):
    """Even a trained_at earlier than every event clamps to zero."""
    report = FreshnessReport.from_batches(event_times, trained_at)
    assert report.batches == len(event_times)
    assert all(lag >= 0.0 for lag in report.lags)
    assert report.p50_lag_seconds >= 0.0
    assert report.p99_lag_seconds >= 0.0
    assert report.max_lag_seconds >= 0.0


@settings(max_examples=60, deadline=None)
@given(
    event_times=st.lists(_times, min_size=1, max_size=40),
    trained_at=_times,
    delay=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
def test_delayed_landing_is_monotone(event_times, trained_at, delay):
    """Training the same batches later never improves any percentile."""
    now = FreshnessReport.from_batches(event_times, trained_at)
    later = FreshnessReport.from_batches(event_times, trained_at + delay)
    assert later.p50_lag_seconds >= now.p50_lag_seconds
    assert later.p99_lag_seconds >= now.p99_lag_seconds
    assert later.max_lag_seconds >= now.max_lag_seconds


@settings(max_examples=60, deadline=None)
@given(event_times=_event_lists, trained_at=_times)
def test_percentiles_are_ordered(event_times, trained_at):
    report = FreshnessReport.from_batches(event_times, trained_at)
    assert (
        report.p50_lag_seconds
        <= report.p99_lag_seconds
        <= report.max_lag_seconds
    )


@settings(max_examples=60, deadline=None)
@given(a=_event_lists, b=_event_lists, c=_event_lists)
def test_merge_is_associative(a, b, c):
    """(a + b) + c == a + (b + c), lag for lag."""
    ra, rb, rc = (FreshnessReport(lags=list(x)) for x in (a, b, c))
    left = ra.merged(rb).merged(rc)
    right = ra.merged(rb.merged(rc))
    assert left.lags == right.lags
    assert left.as_dict() == right.as_dict()
    # merged() never mutates its inputs
    assert ra.lags == list(a) and rb.lags == list(b) and rc.lags == list(c)


@settings(max_examples=60, deadline=None)
@given(a=_event_lists, b=_event_lists)
def test_merge_order_cannot_change_percentiles(a, b):
    """Percentiles are multiset views: a+b and b+a agree on every one."""
    ab = FreshnessReport(lags=list(a)).merged(FreshnessReport(lags=list(b)))
    ba = FreshnessReport(lags=list(b)).merged(FreshnessReport(lags=list(a)))
    assert ab.p50_lag_seconds == ba.p50_lag_seconds
    assert ab.p99_lag_seconds == ba.p99_lag_seconds
    assert ab.max_lag_seconds == ba.max_lag_seconds
    assert ab.batches == ba.batches


def test_in_place_merge_matches_functional_merge():
    left = FreshnessReport(lags=[1.0, 3.0])
    right = FreshnessReport(lags=[2.0])
    functional = left.merged(right)
    left.merge(right)
    assert left.lags == functional.lags == [1.0, 3.0, 2.0]


def test_empty_report_percentiles_are_zero():
    empty = FreshnessReport()
    assert empty.batches == 0
    assert empty.p50_lag_seconds == 0.0
    assert empty.p99_lag_seconds == 0.0
    assert empty.max_lag_seconds == 0.0
