"""Unit tests for the SLO scoreboard (fast, synthetic inputs)."""

import pytest

from repro.metrics import JobSLO, SLOReport, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50.0) == 0.0

    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 25.0) == 10.0
        assert percentile(values, 50.0) == 20.0
        assert percentile(values, 75.0) == 30.0
        assert percentile(values, 99.0) == 40.0
        assert percentile(values, 100.0) == 40.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_out_of_range_q(self):
        with pytest.raises(ValueError, match=r"q must be in \[0, 100\]"):
            percentile([1.0], -1.0)
        with pytest.raises(ValueError, match=r"q must be in \[0, 100\]"):
            percentile([1.0], 100.5)


def _job(name, wall, busy, *, starved=0, batches=4):
    return JobSLO(
        job=name,
        admitted_round=0,
        finished_round=3,
        wall_seconds=wall,
        busy_seconds=busy,
        starved_rounds=starved,
        epochs=2,
        batches=batches,
    )


class TestJobSLO:
    def test_queue_fraction(self):
        assert _job("a", 10.0, 7.5).queue_fraction == pytest.approx(0.25)

    def test_queue_fraction_zero_wall(self):
        assert _job("a", 0.0, 0.0).queue_fraction == 0.0


class TestSLOReport:
    def _report(self):
        return SLOReport(
            jobs=[
                _job("a", 10.0, 10.0, batches=8),
                _job("b", 30.0, 20.0, starved=1, batches=4),
                _job("c", 20.0, 20.0, batches=4),
            ],
            total_wall_seconds=40.0,
            reader_cpu_seconds=100.0,
            wasted_cpu_seconds=25.0,
            crashes=2,
            straggler_shards=1,
            preemptions=1,
        )

    def test_wall_percentiles(self):
        report = self._report()
        assert report.p50_wall_seconds == 20.0
        assert report.p99_wall_seconds == 30.0

    def test_starvation_and_goodput(self):
        report = self._report()
        assert report.max_starved_rounds == 1
        assert report.total_batches == 16
        assert report.goodput_batches_per_second == pytest.approx(0.4)

    def test_useful_cpu_fraction(self):
        assert self._report().useful_cpu_fraction == pytest.approx(0.75)
        assert SLOReport().useful_cpu_fraction == 1.0

    def test_empty_report_defaults(self):
        empty = SLOReport()
        assert empty.p50_wall_seconds == 0.0
        assert empty.max_starved_rounds == 0
        assert empty.goodput_batches_per_second == 0.0

    def test_as_dict_round_trips_equality(self):
        assert self._report().as_dict() == self._report().as_dict()
        d = self._report().as_dict()
        assert d["crashes"] == 2
        assert d["preemptions"] == 1
        assert [j["job"] for j in d["jobs"]] == ["a", "b", "c"]
