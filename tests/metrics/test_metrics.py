"""Tests for counters, memory tracking, breakdowns, and overlap."""

import pytest

from repro.metrics import (
    Counters,
    IterationBreakdown,
    MemoryTracker,
    OverlapReport,
    QueueWaitBreakdown,
    ReaderCpuBreakdown,
)


class TestCounters:
    def test_add_get(self):
        c = Counters()
        c.add("flops", 10)
        c.add("flops", 5)
        assert c["flops"] == 15
        assert c.get("missing") == 0.0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a["x"] == 3 and a["y"] == 3

    def test_reset_and_as_dict(self):
        c = Counters()
        c.add("x", 1)
        assert c.as_dict() == {"x": 1}
        c.reset()
        assert c.as_dict() == {}


class TestMemoryTracker:
    def test_alloc_free_peak(self):
        m = MemoryTracker(capacity_bytes=100)
        m.alloc(60)
        m.alloc(20)
        m.free(50)
        assert m.current_bytes == 30
        assert m.peak_bytes == 80
        assert m.peak_utilization == pytest.approx(0.8)
        assert m.utilization == pytest.approx(0.3)

    def test_capacity_enforced(self):
        m = MemoryTracker(capacity_bytes=10)
        with pytest.raises(MemoryError):
            m.alloc(11)

    def test_unbounded(self):
        m = MemoryTracker()
        m.alloc(10**12)
        assert m.utilization == 0.0

    def test_invalid_ops(self):
        m = MemoryTracker(100)
        with pytest.raises(ValueError):
            m.alloc(-1)
        with pytest.raises(ValueError):
            m.free(-1)
        with pytest.raises(ValueError):
            m.free(1)
        with pytest.raises(ValueError):
            MemoryTracker(0)

    def test_reset_peak(self):
        m = MemoryTracker(100)
        m.alloc(50)
        m.free(50)
        m.reset_peak()
        assert m.peak_bytes == 0


class TestBreakdowns:
    def test_reader_breakdown_normalization(self):
        base = ReaderCpuBreakdown(fill=6.0, convert=1.0, process=3.0)
        recd = ReaderCpuBreakdown(fill=3.0, convert=1.2, process=2.6)
        norm = recd.normalized_to(base)
        assert norm["total"] == pytest.approx(6.8 / 10.0)
        assert norm["fill"] == pytest.approx(0.3)

    def test_reader_breakdown_merge(self):
        a = ReaderCpuBreakdown(1, 2, 3)
        a.merge(ReaderCpuBreakdown(1, 1, 1))
        assert a.total == 9

    def test_iteration_breakdown(self):
        base = IterationBreakdown(emb_lookup=1, gemm=4, a2a=4, other=1)
        recd = IterationBreakdown(emb_lookup=0.8, gemm=3.5, a2a=2, other=1)
        norm = recd.normalized_to(base)
        assert norm["a2a"] == pytest.approx(0.2)
        assert norm["total"] == pytest.approx(7.3 / 10)

    def test_zero_baseline_safe(self):
        norm = ReaderCpuBreakdown().normalized_to(ReaderCpuBreakdown())
        assert norm["total"] == 0.0


class TestOverlapReport:
    def test_attribution_arithmetic(self):
        ov = OverlapReport(
            wall_seconds=10.0,
            reader_stall_seconds=3.0,
            trainer_busy_seconds=6.0,
            batches=4,
        )
        assert ov.other_seconds == pytest.approx(1.0)
        assert ov.reader_stall_fraction == pytest.approx(0.3)
        assert ov.trainer_stall_fraction == pytest.approx(0.6)
        assert ov.other_fraction == pytest.approx(0.1)

    def test_fractions_sum_to_one(self):
        ov = OverlapReport(
            wall_seconds=2.5,
            reader_stall_seconds=0.7,
            trainer_busy_seconds=1.6,
        )
        assert sum(ov.fractions.values()) == pytest.approx(1.0)

    def test_zero_wall_safe(self):
        ov = OverlapReport()
        assert ov.reader_stall_fraction == 0.0
        assert ov.trainer_stall_fraction == 0.0
        assert ov.other_fraction == 0.0
        assert sum(ov.fractions.values()) == 0.0

    def test_timer_jitter_clamped(self):
        """Measured sub-timers may overshoot wall by float jitter; the
        remainder never goes negative."""
        ov = OverlapReport(
            wall_seconds=1.0,
            reader_stall_seconds=0.6,
            trainer_busy_seconds=0.5,
        )
        assert ov.other_seconds == 0.0

    def test_from_run(self):
        from repro.distributed.trainer import TrainingReport

        training = TrainingReport(
            ingest_wait_seconds=1.0,
            step_wall_seconds=3.0,
            run_wall_seconds=4.5,
        )
        queue = QueueWaitBreakdown(put_wait=0.2, get_wait=0.9)
        ov = OverlapReport.from_run(training, queue=queue, streaming=True)
        assert ov.wall_seconds == pytest.approx(4.5)
        assert ov.reader_stall_seconds == pytest.approx(1.0)
        assert ov.trainer_busy_seconds == pytest.approx(3.0)
        assert ov.queue.get_wait == pytest.approx(0.9)
        assert ov.streaming
        assert sum(ov.fractions.values()) == pytest.approx(1.0)
        # an explicit wall overrides the training report's
        wider = OverlapReport.from_run(training, wall_seconds=9.0)
        assert wider.wall_seconds == pytest.approx(9.0)
