"""Docs cannot rot: intra-repo markdown links must resolve, every
``python`` fenced snippet in README/docs must actually execute, and no
page under ``docs/`` may be orphaned — each must be reachable by
following links from the README or ``docs/architecture.md``."""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: the documentation surface under test
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]
    + list((REPO_ROOT / "docs").glob("*.md"))
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _doc_id(path: Path) -> str:
    return str(path.relative_to(REPO_ROOT))


@pytest.mark.parametrize("md", DOC_FILES, ids=_doc_id)
def test_intra_repo_links_resolve(md):
    """Every relative markdown link points at a real file."""
    assert md.exists(), f"doc file vanished: {md}"
    broken = []
    for target in _LINK_RE.findall(md.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = (md.parent / target.split("#", 1)[0]).resolve()
        try:
            path.relative_to(REPO_ROOT)
        except ValueError:
            # GitHub-relative escapes (e.g. the ../../actions badge
            # link) point outside the checkout; not checkable here.
            continue
        if not path.exists():
            broken.append(target)
    assert not broken, f"{_doc_id(md)} has broken links: {broken}"


def _linked_files(md: Path) -> set[Path]:
    """Repo-internal files a markdown page links to (fragment-free)."""
    out = set()
    for target in _LINK_RE.findall(md.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = (md.parent / target.split("#", 1)[0]).resolve()
        try:
            path.relative_to(REPO_ROOT)
        except ValueError:
            continue
        if path.is_file():
            out.add(path)
    return out


def test_no_orphaned_docs_pages():
    """Every page under docs/ must be reachable by following markdown
    links from README.md or docs/architecture.md — a page nobody links
    to is a page nobody reads, and it rots."""
    roots = [REPO_ROOT / "README.md", REPO_ROOT / "docs" / "architecture.md"]
    reachable = set(roots)
    frontier = list(roots)
    while frontier:
        for target in _linked_files(frontier.pop()):
            if target.suffix == ".md" and target not in reachable:
                reachable.add(target)
                frontier.append(target)
    orphans = sorted(
        _doc_id(p)
        for p in (REPO_ROOT / "docs").rglob("*.md")
        if p not in reachable
    )
    assert not orphans, (
        f"orphaned docs pages (unreachable from README.md or "
        f"docs/architecture.md): {orphans}"
    )


@pytest.mark.parametrize("md", DOC_FILES, ids=_doc_id)
def test_python_snippets_execute(md):
    """``python`` fenced blocks run top-to-bottom, sharing one
    namespace per file (so later blocks may build on earlier imports).
    Non-runnable illustrations must use a different fence language."""
    snippets = _FENCE_RE.findall(md.read_text())
    if not snippets:
        pytest.skip(f"{_doc_id(md)} has no python snippets")
    namespace: dict = {"__name__": f"docsnippet:{_doc_id(md)}"}
    for i, snippet in enumerate(snippets):
        try:
            exec(compile(snippet, f"{_doc_id(md)}[{i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - the assert is the point
            pytest.fail(
                f"snippet {i} in {_doc_id(md)} failed: "
                f"{type(exc).__name__}: {exc}\n---\n{snippet}"
            )
