"""The public-API snapshot: ``repro.pipeline.__all__``,
``repro.experiments.__all__``, and every spec dataclass's field names
are diffed against a checked-in manifest
(``tests/docs/api_manifest.json``), so run-surface changes are always
deliberate — adding, renaming, or removing a public name or spec field
fails CI until the manifest is updated in the same change."""

import json
from pathlib import Path

import pytest

import repro.experiments
import repro.pipeline
from repro.pipeline.spec import spec_field_names

MANIFEST_PATH = Path(__file__).with_name("api_manifest.json")


def _current_surface() -> dict:
    """The live public surface, in the manifest's shape."""
    return {
        "pipeline_all": sorted(repro.pipeline.__all__),
        "experiments_all": sorted(repro.experiments.__all__),
        "spec_fields": spec_field_names(),
    }


def test_public_surface_matches_manifest():
    """The snapshot diff.  On an intentional surface change, regenerate
    the manifest:

    ``python -c "import json, tests.docs.test_api_surface as t;
    print(json.dumps(t._current_surface(), indent=2))"
    > tests/docs/api_manifest.json``
    """
    manifest = json.loads(MANIFEST_PATH.read_text())
    current = _current_surface()
    assert current == manifest, (
        "the public API surface changed; if intentional, "
        f"update {MANIFEST_PATH.name} (see this test's docstring) and "
        "document the change in docs/api.md or docs/experiments.md"
    )


@pytest.mark.parametrize(
    "module", [repro.pipeline, repro.experiments], ids=lambda m: m.__name__
)
def test_all_names_resolve(module):
    """Everything advertised in __all__ actually exists."""
    missing = [
        name for name in module.__all__ if not hasattr(module, name)
    ]
    assert not missing, f"__all__ advertises missing names: {missing}"
