"""The documented-API contract, enforced without external tools: every
public class, method, and function in the data-path packages —
``repro.reader``, ``repro.pipeline``, ``repro.scribe``,
``repro.storage``, and ``repro.metrics`` — must carry a docstring.
CI's ruff job checks the same surface with the pydocstyle ``D`` subset;
this test keeps the contract enforceable from a bare ``pytest`` run."""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: the packages whose public surface is under the docstring contract
SCOPED_PACKAGES = (
    "reader",
    "pipeline",
    "scribe",
    "storage",
    "metrics",
    "experiments",
)


def _scoped_files():
    for pkg in SCOPED_PACKAGES:
        yield from sorted((SRC / pkg).glob("*.py"))


def _public_defs(tree):
    """Yield (qualname, node) for public classes/functions, skipping
    anything private (``_``-prefixed) or nested inside functions."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            yield node.name, node
            for sub in node.body:
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and not sub.name.startswith("_"):
                    yield f"{node.name}.{sub.name}", sub
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and not node.name.startswith("_"):
            yield node.name, node


@pytest.mark.parametrize(
    "path", _scoped_files(), ids=lambda p: f"{p.parent.name}/{p.name}"
)
def test_public_api_is_documented(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path} is missing a module docstring"
    missing = [
        name
        for name, node in _public_defs(tree)
        if not ast.get_docstring(node)
    ]
    assert not missing, (
        f"{path.relative_to(SRC.parent.parent)} has undocumented public "
        f"API: {missing}"
    )
