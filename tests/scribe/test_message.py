"""Serialization round-trip tests for log records."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.datagen.session import Sample
from repro.scribe import EventLogRecord, FeatureLogRecord, split_sample


def make_feature_record():
    return FeatureLogRecord(
        request_id=42,
        session_id=7,
        timestamp=123.5,
        sparse={
            "hist": np.array([1, 2, 3], dtype=np.int64),
            "empty": np.array([], dtype=np.int64),
        },
        dense={"hour": 0.25},
    )


class TestFeatureLogRecord:
    def test_round_trip(self):
        rec = make_feature_record()
        got = FeatureLogRecord.deserialize(rec.serialize())
        assert got.request_id == 42
        assert got.session_id == 7
        assert got.timestamp == 123.5
        np.testing.assert_array_equal(got.sparse["hist"], [1, 2, 3])
        assert got.sparse["empty"].size == 0
        assert got.dense == {"hour": 0.25}

    def test_no_features(self):
        rec = FeatureLogRecord(1, 2, 3.0, {}, {})
        got = FeatureLogRecord.deserialize(rec.serialize())
        assert got.sparse == {}
        assert got.dense == {}

    def test_deserialized_arrays_are_owned(self):
        """Deserialization must copy out of the buffer (writable arrays)."""
        rec = make_feature_record()
        got = FeatureLogRecord.deserialize(rec.serialize())
        got.sparse["hist"][0] = 99  # must not raise

    def test_negative_ids(self):
        rec = FeatureLogRecord(-5, -9, 0.0, {"f": np.array([-1], dtype=np.int64)}, {})
        got = FeatureLogRecord.deserialize(rec.serialize())
        assert got.request_id == -5
        assert got.session_id == -9
        np.testing.assert_array_equal(got.sparse["f"], [-1])


class TestEventLogRecord:
    def test_round_trip(self):
        ev = EventLogRecord(request_id=1, session_id=2, timestamp=9.5, label=1)
        got = EventLogRecord.deserialize(ev.serialize())
        assert got == ev

    def test_fixed_size(self):
        ev = EventLogRecord(1, 2, 3.0, 0)
        assert len(ev.serialize()) == EventLogRecord._FMT.size


class TestSplitSample:
    def test_split_preserves_everything(self):
        s = Sample(
            sample_id=10,
            session_id=3,
            timestamp=5.0,
            label=1,
            sparse={"f": np.array([4, 5], dtype=np.int64)},
            dense={"d": 0.5},
        )
        feat, ev = split_sample(s)
        assert feat.request_id == ev.request_id == 10
        assert feat.session_id == ev.session_id == 3
        assert ev.label == 1
        np.testing.assert_array_equal(feat.sparse["f"], [4, 5])


@given(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.dictionaries(
        st.text(
            alphabet="abcdefgh_", min_size=1, max_size=8
        ),
        st.lists(st.integers(min_value=0, max_value=2**50), max_size=6),
        max_size=4,
    ),
)
def test_property_feature_record_round_trip(rid, sid, ts, sparse):
    rec = FeatureLogRecord(
        rid,
        sid,
        ts,
        {k: np.array(v, dtype=np.int64) for k, v in sparse.items()},
        {},
    )
    got = FeatureLogRecord.deserialize(rec.serialize())
    assert got.request_id == rid and got.session_id == sid
    assert got.timestamp == ts
    assert set(got.sparse) == set(sparse)
    for k, v in sparse.items():
        np.testing.assert_array_equal(got.sparse[k], v)
