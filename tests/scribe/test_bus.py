"""Tests for Scribe sharding and compression accounting (O1)."""

import pytest

from repro.datagen import (
    DatasetSchema,
    FeatureKind,
    SparseFeatureSpec,
    TraceConfig,
    generate_partition,
)
from repro.scribe import (
    ScribeCluster,
    ScribeShard,
    ShardKeyPolicy,
    consistent_hash,
    route,
    split_sample,
)


class TestConsistentHash:
    def test_deterministic(self):
        assert consistent_hash(b"abc", 16) == consistent_hash(b"abc", 16)

    def test_range(self):
        for key in (b"a", b"b", b"c", b"xyz"):
            assert 0 <= consistent_hash(key, 7) < 7

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            consistent_hash(b"a", 0)

    def test_spreads_keys(self):
        shards = {consistent_hash(str(i).encode(), 16) for i in range(200)}
        assert len(shards) == 16


class TestRoute:
    def test_session_policy_groups_by_session(self):
        a = route(ShardKeyPolicy.SESSION_ID, 8, 5, b"payload-1")
        b = route(ShardKeyPolicy.SESSION_ID, 8, 5, b"payload-2")
        assert a == b

    def test_random_policy_ignores_session(self):
        routes = {
            route(ShardKeyPolicy.RANDOM, 64, 5, f"payload-{i}".encode())
            for i in range(100)
        }
        assert len(routes) > 10


class TestScribeShard:
    def test_block_sealing_and_readback(self):
        shard = ScribeShard(0, block_bytes=64)
        msgs = [b"x" * 30, b"y" * 30, b"z" * 10]
        for m in msgs:
            shard.append(m)
        assert shard.read_messages() == msgs

    def test_compression_counts(self):
        shard = ScribeShard(0, block_bytes=128)
        shard.append(b"a" * 1000)
        shard.flush()
        assert shard.stats.raw_bytes == 1004  # + 4-byte frame
        assert 0 < shard.stats.compressed_bytes < 1004
        assert shard.stats.num_blocks == 1
        assert shard.stats.compression_ratio > 1.0

    def test_empty_flush_noop(self):
        shard = ScribeShard(0)
        shard.flush()
        assert shard.stats.num_blocks == 0
        assert shard.stats.compression_ratio == 1.0

    def test_seal_reports_blocks_sealed(self):
        shard = ScribeShard(0, block_bytes=1 << 20)
        assert shard.seal() == 0  # nothing buffered
        shard.append(b"a" * 10)
        shard.append(b"b" * 10)
        assert shard.seal() == 1
        assert shard.seal() == 0  # idempotent until new appends

    def test_drain_returns_only_newly_sealed_messages(self):
        shard = ScribeShard(0, block_bytes=1 << 20)
        shard.append(b"tick-0")
        shard.seal()
        assert shard.drain() == [b"tick-0"]
        shard.append(b"tick-1a")
        shard.append(b"tick-1b")
        shard.seal()
        # Only the second tick's messages; history is not re-read.
        assert shard.drain() == [b"tick-1a", b"tick-1b"]
        # read_messages still sees everything, in order.
        assert shard.read_messages() == [b"tick-0", b"tick-1a", b"tick-1b"]

    def test_drain_on_empty_shard_names_the_shard(self):
        shard = ScribeShard(3)
        with pytest.raises(
            ValueError, match="shard 3 is empty: nothing to drain"
        ):
            shard.drain()

    def test_drain_with_unsealed_messages_says_seal_first(self):
        shard = ScribeShard(1, block_bytes=1 << 20)
        shard.append(b"buffered")
        with pytest.raises(
            ValueError,
            match=r"shard 1: nothing sealed to drain; 1 message\(s\) "
            r"still buffered — call seal\(\) first",
        ):
            shard.drain()

    def test_drained_twice_without_new_seal_raises(self):
        shard = ScribeShard(0, block_bytes=1 << 20)
        shard.append(b"m")
        shard.seal()
        shard.drain()
        with pytest.raises(ValueError, match="is empty: nothing to drain"):
            shard.drain()


class TestClusterSealDrain:
    def _log_tick(self, cluster, samples):
        for s in samples:
            feat, ev = split_sample(s)
            cluster.log_features(feat)
            cluster.log_event(ev)

    def test_drain_all_is_one_ticks_ingest(self):
        samples = generate_partition(
            _trace_schema(), 40, TraceConfig(seed=9)
        )
        cluster = ScribeCluster(
            num_shards=4, policy=ShardKeyPolicy.SESSION_ID
        )
        self._log_tick(cluster, samples[:20])
        cluster.seal()
        first = cluster.drain_all()
        self._log_tick(cluster, samples[20:])
        cluster.seal()
        second = cluster.drain_all()
        # Two ticks' drains partition the full readback: nothing lost,
        # nothing re-read (2 framed messages per sample: features+event).
        assert len(first) + len(second) == 2 * len(samples)
        assert sorted(first + second) == sorted(cluster.read_all())

    def test_empty_cluster_drains_to_empty(self):
        cluster = ScribeCluster(num_shards=3)
        assert cluster.drain_all() == []
        assert cluster.seal() == 0


def _trace_schema():
    return DatasetSchema(
        sparse=(
            SparseFeatureSpec(
                "hist", kind=FeatureKind.USER, avg_length=30, change_prob=0.05
            ),
            SparseFeatureSpec(
                "item", kind=FeatureKind.ITEM, avg_length=1, change_prob=0.95
            ),
        )
    )


def _log_trace(policy, samples, num_shards=8):
    cluster = ScribeCluster(num_shards=num_shards, policy=policy,
                            block_bytes=32 * 1024)
    for s in samples:
        feat, ev = split_sample(s)
        cluster.log_features(feat)
        cluster.log_event(ev)
    cluster.flush()
    return cluster


class TestScribeCluster:
    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            ScribeCluster(num_shards=0)

    def test_message_counts(self):
        samples = generate_partition(_trace_schema(), 30, TraceConfig(seed=1))
        cluster = _log_trace(ShardKeyPolicy.RANDOM, samples)
        assert cluster.stats.num_messages == 2 * len(samples)
        assert sum(cluster.shard_message_counts()) == 2 * len(samples)

    def test_read_all_returns_everything(self):
        samples = generate_partition(_trace_schema(), 10, TraceConfig(seed=2))
        cluster = _log_trace(ShardKeyPolicy.SESSION_ID, samples)
        assert len(cluster.read_all()) == 2 * len(samples)

    def test_session_sharding_improves_compression(self):
        """O1's headline: session-ID sharding must beat random sharding on
        compression ratio (paper: 1.50x -> 2.25x)."""
        samples = generate_partition(
            _trace_schema(), 400, TraceConfig(seed=3)
        )
        random_ratio = _log_trace(
            ShardKeyPolicy.RANDOM, samples
        ).compression_ratio
        session_ratio = _log_trace(
            ShardKeyPolicy.SESSION_ID, samples
        ).compression_ratio
        assert session_ratio > random_ratio * 1.2

    def test_session_sharding_reduces_etl_ingest_bytes(self):
        samples = generate_partition(
            _trace_schema(), 400, TraceConfig(seed=3)
        )
        random_bytes = _log_trace(ShardKeyPolicy.RANDOM, samples).etl_ingest_bytes
        session_bytes = _log_trace(
            ShardKeyPolicy.SESSION_ID, samples
        ).etl_ingest_bytes
        assert session_bytes < random_bytes

    def test_stats_merge(self):
        samples = generate_partition(_trace_schema(), 20, TraceConfig(seed=4))
        cluster = _log_trace(ShardKeyPolicy.RANDOM, samples)
        total = cluster.stats
        assert total.raw_bytes == sum(
            s.stats.raw_bytes for s in cluster.shards
        )
