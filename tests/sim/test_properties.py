"""Hypothesis chaos properties: any seeded plan is harmless to losses.

These generate whole fault plans from seeds and execute them over live
sessions, so they are marked ``chaos`` and run in the opt-in tier
(``pytest -m chaos``).  The properties are the simulator's contract:

* **bit-identity** — whatever the plan throws at the tier, every job's
  stitched loss trajectory equals its clean, fault-free run exactly;
* **allocation invariants** — each round leases at most the pool's
  width and at least one worker per scheduled job, and no job is ever
  skipped two rounds in a row.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.workloads import rm1, rm2
from repro.sim import FaultPlan, ScenarioRunner
from repro.sim.scenarios import _job

pytestmark = pytest.mark.chaos


def _runner(plan):
    specs = [
        _job(rm1(scale=0.15), seed=21, epochs=3, sessions=40),
        _job(rm2(scale=0.15), seed=22, epochs=3, sessions=40),
    ]
    return ScenarioRunner(specs, plan, width=4, names=["alpha", "beta"])


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_any_seeded_plan_preserves_loss_bit_identity(seed):
    plan = FaultPlan.seeded(
        seed,
        ["alpha", "beta"],
        rounds=6,
        crashes=2,
        stragglers=2,
        preemptions=2,
    )
    runner = _runner(plan)
    result = runner.run()
    baseline = runner.baseline()
    assert sorted(result.losses) == ["alpha", "beta"]
    for job in ("alpha", "beta"):
        assert len(result.losses[job]) == 6  # 3 epochs x 2 batches
        assert result.losses[job] == baseline[job], (
            f"seed {seed}: {job} losses diverged under plan {plan}"
        )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_any_seeded_plan_keeps_allocation_invariants(seed):
    plan = FaultPlan.seeded(
        seed,
        ["alpha", "beta"],
        rounds=6,
        crashes=1,
        stragglers=1,
        preemptions=2,
    )
    result = _runner(plan).run()
    tier = result.tier
    for rnd, width in zip(tier.rounds, tier.widths):
        leased = sum(s.workers for s in rnd.stats)
        assert leased <= width
        assert all(s.workers >= 1 for s in rnd.stats)
        # A job is active-but-unserved only via the skipped list.
        assert not (set(rnd.skipped) & {s.job for s in rnd.stats})
    for job in tier.jobs:
        assert tier.max_consecutive_skips(job) <= 1
    # The SLO rollup agrees with the rounds it summarizes.
    assert result.slo.max_starved_rounds == max(
        (j.starved_rounds for j in result.slo.jobs), default=0
    )
    assert result.slo.total_wall_seconds == pytest.approx(
        sum(r.modeled_wall_seconds for r in tier.rounds)
    )
