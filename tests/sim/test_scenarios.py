"""Scenario acceptance tests: bit-identity, replay, the catalog.

The ``crash-resume`` scenario is the tier-1 acceptance criterion — a
seeded run with a worker crash, a straggling shard, and a
preempt/checkpoint/resume cycle whose stitched per-job losses must be
**bit-identical** to an uninterrupted run, and whose replay must
reproduce the identical fingerprint.  The full-catalog sweep is marked
``chaos`` and runs in the opt-in tier.
"""

import pytest

from repro.sim import (
    FaultPlan,
    Preemption,
    ScenarioRunner,
    build_scenario,
    scenario_names,
)
from repro.sim.scenarios import _job
from repro.datagen.workloads import rm1

SEED = 3
SCALE = 0.2


@pytest.fixture(scope="module")
def crash_resume():
    """One crash-resume run, its clean baseline, and a seeded replay."""
    scenario = build_scenario("crash-resume", seed=SEED, scale=SCALE)
    runner = scenario.runner()
    result = runner.run()
    baseline = runner.baseline()
    replay = scenario.runner().run()
    return scenario, result, baseline, replay


class TestCrashResumeAcceptance:
    def test_losses_bit_identical_to_clean_run(self, crash_resume):
        scenario, result, baseline, _ = crash_resume
        assert sorted(result.losses) == sorted(baseline)
        for name, spec in scenario.jobs:
            expected_losses = spec.train.train_epochs * spec.train.train_batches
            assert len(result.losses[name]) == expected_losses
            # The criterion: float-for-float equality, not approx.
            assert result.losses[name] == baseline[name]

    def test_replay_reproduces_identical_fingerprint(self, crash_resume):
        _, result, _, replay = crash_resume
        assert replay.fingerprint() == result.fingerprint()

    def test_trace_records_every_fault_kind(self, crash_resume):
        _, result, _, _ = crash_resume
        events = [ev["event"] for ev in result.trace]
        assert "fleet_faults" in events
        assert "preempt" in events
        assert "resume" in events
        preempt = next(ev for ev in result.trace if ev["event"] == "preempt")
        resume = next(ev for ev in result.trace if ev["event"] == "resume")
        assert preempt["job"] == resume["job"] == "alpha"
        assert resume["start_epoch"] == preempt["epochs_done"] > 0
        assert resume["round"] >= preempt["resume_round"]

    def test_slo_counts_the_injected_faults(self, crash_resume):
        _, result, _, _ = crash_resume
        slo = result.slo
        assert slo.crashes == 1
        assert slo.straggler_shards == 1
        assert slo.preemptions == 1
        assert slo.wasted_cpu_seconds > 0.0
        assert 0.0 < slo.useful_cpu_fraction < 1.0
        assert {j.job for j in slo.jobs} == {"alpha", "beta"}
        # The preempted job paid queue time while descheduled.
        alpha = next(j for j in slo.jobs if j.job == "alpha")
        assert alpha.queue_fraction > 0.0
        assert slo.p99_wall_seconds >= slo.p50_wall_seconds > 0.0


@pytest.fixture(scope="module")
def dedup_crash_resume():
    """One dedup-streaming crash-resume run, its clean dedup baseline,
    and a seeded replay."""
    scenario = build_scenario("dedup-crash-resume", seed=SEED, scale=SCALE)
    runner = scenario.runner()
    result = runner.run()
    baseline = runner.baseline()
    replay = scenario.runner().run()
    return scenario, result, baseline, replay


class TestDedupCrashResumeAcceptance:
    """Satellite: crash+resume with the dedup hot path enabled must be
    as bit-reproducible as the non-dedup scenario."""

    def test_every_job_streams_dedup(self, dedup_crash_resume):
        scenario, _, _, _ = dedup_crash_resume
        assert all(spec.reader.dedup for _, spec in scenario.jobs)

    def test_losses_bit_identical_to_uninterrupted_dedup_run(
        self, dedup_crash_resume
    ):
        scenario, result, baseline, _ = dedup_crash_resume
        assert sorted(result.losses) == sorted(baseline)
        for name, spec in scenario.jobs:
            expected = spec.train.train_epochs * spec.train.train_batches
            assert len(result.losses[name]) == expected
            # Float-for-float equality, not approx.
            assert result.losses[name] == baseline[name]

    def test_replay_reproduces_identical_fingerprint(
        self, dedup_crash_resume
    ):
        _, result, _, replay = dedup_crash_resume
        assert replay.fingerprint() == result.fingerprint()

    def test_preempt_resume_cycle_fired(self, dedup_crash_resume):
        _, result, _, _ = dedup_crash_resume
        events = [ev["event"] for ev in result.trace]
        assert "fleet_faults" in events
        assert "preempt" in events
        assert "resume" in events

    def test_cli_verify_passes(self):
        from repro.cli import main

        assert main(
            [
                "simulate",
                "--scenario",
                "dedup-crash-resume",
                "--seed",
                str(SEED),
                "--scale",
                str(SCALE),
                "--verify",
            ]
        ) == 0


@pytest.fixture(scope="module")
def stream_crash_resume():
    """One live-landing crash-resume run, its land-everything-first
    baseline, and a seeded replay."""
    scenario = build_scenario("stream-crash-resume", seed=SEED, scale=SCALE)
    runner = scenario.runner()
    result = runner.run()
    baseline = runner.baseline()
    replay = scenario.runner().run()
    return scenario, result, baseline, replay


class TestStreamCrashResumeAcceptance:
    """Tentpole acceptance: micro-partitions landing on the live clock
    while a crash, a straggler, and a preempt/resume hit the tier must
    leave every loss trajectory bit-identical to a run whose whole
    stream was on disk before round one."""

    def test_every_job_streams(self, stream_crash_resume):
        scenario, _, _, _ = stream_crash_resume
        assert all(spec.stream is not None for _, spec in scenario.jobs)
        assert scenario.freshness_slo is not None

    def test_losses_bit_identical_to_land_first_baseline(
        self, stream_crash_resume
    ):
        _, result, baseline, _ = stream_crash_resume
        assert sorted(result.losses) == sorted(baseline)
        for name, losses in result.losses.items():
            assert losses  # every streamed job actually trained
            # The criterion: float-for-float equality, not approx.
            assert losses == baseline[name]

    def test_replay_reproduces_identical_fingerprint(
        self, stream_crash_resume
    ):
        _, result, _, replay = stream_crash_resume
        assert replay.fingerprint() == result.fingerprint()

    def test_every_fault_kind_fired(self, stream_crash_resume):
        _, result, _, _ = stream_crash_resume
        events = [ev["event"] for ev in result.trace]
        assert "fleet_faults" in events
        assert "preempt" in events
        assert "resume" in events

    def test_slo_reports_freshness(self, stream_crash_resume):
        _, result, _, _ = stream_crash_resume
        slo = result.slo
        assert slo.freshness.batches > 0
        assert (
            0.0
            < slo.freshness_p50_seconds
            <= slo.freshness_p99_seconds
            <= slo.freshness.max_lag_seconds
        )
        assert slo.freshness.as_dict() == result.slo.as_dict()["freshness"]

    def test_cli_verify_passes(self):
        from repro.cli import main

        assert main(
            [
                "simulate",
                "--scenario",
                "stream-crash-resume",
                "--seed",
                str(SEED),
                "--scale",
                str(SCALE),
                "--verify",
            ]
        ) == 0


class TestCatalog:
    def test_names_are_sorted_and_complete(self):
        assert scenario_names() == [
            "burst",
            "churn",
            "crash-resume",
            "dedup-crash-resume",
            "stragglers",
            "stream-crash-resume",
            "wide-crash-resume",
        ]

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario 'nope'"):
            build_scenario("nope")

    def test_same_seed_same_scenario(self):
        a = build_scenario("churn", seed=5)
        b = build_scenario("churn", seed=5)
        assert a.plan == b.plan
        assert [name for name, _ in a.jobs] == [name for name, _ in b.jobs]


class TestRunnerGuards:
    def test_arrival_name_collision_rejected(self):
        from repro.sim import Arrival

        spec = _job(rm1(scale=0.1), seed=1, epochs=2, sessions=30)
        plan = FaultPlan(arrivals=(Arrival(round=1, name="alpha", spec=spec),))
        with pytest.raises(ValueError, match="collide with initial jobs"):
            ScenarioRunner([spec], plan, width=2, names=["alpha"])

    def test_preempting_unknown_job_is_ignored(self):
        spec = _job(rm1(scale=0.1), seed=1, epochs=2, sessions=30)
        plan = FaultPlan(preemptions=(Preemption(round=1, job="ghost"),))
        runner = ScenarioRunner([spec], plan, width=2, names=["alpha"])
        result = runner.run()
        assert result.slo.preemptions == 0
        assert len(result.losses["alpha"]) == 4


@pytest.mark.chaos
class TestWideCrashResume:
    """Satellite: the width-64 async scenario rides out the full fault
    shape bit-identically (the chaos-tier acceptance for the async
    executor at scale)."""

    @pytest.fixture(scope="class")
    def wide(self):
        scenario = build_scenario("wide-crash-resume", seed=SEED, scale=SCALE)
        runner = scenario.runner()
        result = runner.run()
        baseline = runner.baseline()
        replay = scenario.runner().run()
        return scenario, result, baseline, replay

    def test_is_actually_wide_and_async(self, wide):
        scenario, _, _, _ = wide
        assert scenario.width == 64
        assert all(
            spec.reader.executor == "async" for _, spec in scenario.jobs
        )
        # per-epoch batch caps are lifted so the pool really fans out
        assert all(
            spec.train.train_batches is None for _, spec in scenario.jobs
        )

    def test_losses_bit_identical_to_uninterrupted_run(self, wide):
        _, result, baseline, _ = wide
        assert sorted(result.losses) == sorted(baseline)
        for name, losses in result.losses.items():
            assert losses  # the wide run must actually train
            # The criterion: float-for-float equality, not approx.
            assert losses == baseline[name]

    def test_replay_reproduces_identical_fingerprint(self, wide):
        _, result, _, replay = wide
        assert replay.fingerprint() == result.fingerprint()

    def test_every_fault_kind_fired(self, wide):
        _, result, _, _ = wide
        events = [ev["event"] for ev in result.trace]
        assert "fleet_faults" in events
        assert "preempt" in events
        assert "resume" in events
        assert result.slo.crashes == 1
        assert result.slo.straggler_shards == 1
        assert result.slo.preemptions == 1


@pytest.mark.chaos
@pytest.mark.parametrize("name", scenario_names())
def test_catalog_sweep_bit_identity_and_replay(name):
    """Every catalog scenario preserves bit-identity and replays."""
    scenario = build_scenario(name, seed=11, scale=SCALE)
    runner = scenario.runner()
    result = runner.run()
    baseline = runner.baseline()
    for job, losses in result.losses.items():
        assert losses == baseline[job], f"{name}: {job} diverged"
    replay = build_scenario(name, seed=11, scale=SCALE).runner().run()
    assert replay.fingerprint() == result.fingerprint()
    # Fairness holds under every scenario's churn.
    for job in result.tier.jobs:
        assert result.tier.max_consecutive_skips(job) <= 1
