"""Unit tests for the fault-plan data model (fast, tier-1)."""

import pytest

from repro.sim import (
    Arrival,
    CrashFault,
    FaultPlan,
    Preemption,
    StragglerFault,
)


class TestEventValidation:
    def test_negative_round_rejected(self):
        with pytest.raises(ValueError, match="round must be non-negative"):
            CrashFault(round=-1, job="a")
        with pytest.raises(ValueError, match="round must be non-negative"):
            StragglerFault(round=-2, job="a")
        with pytest.raises(ValueError, match="round must be non-negative"):
            Preemption(round=-1, job="a")
        with pytest.raises(ValueError, match="round must be non-negative"):
            Arrival(round=-1, name="a", spec=None)

    def test_crash_bounds(self):
        with pytest.raises(ValueError, match="shard must be non-negative"):
            CrashFault(round=0, job="a", shard=-1)
        with pytest.raises(ValueError, match="lost_fraction"):
            CrashFault(round=0, job="a", lost_fraction=1.5)
        with pytest.raises(ValueError, match="lost_fraction"):
            CrashFault(round=0, job="a", lost_fraction=-0.1)

    def test_straggler_bounds(self):
        with pytest.raises(ValueError, match="shard must be non-negative"):
            StragglerFault(round=0, job="a", shard=-1)
        with pytest.raises(ValueError, match="factor must be >= 1.0"):
            StragglerFault(round=0, job="a", factor=0.5)

    def test_preemption_resume_after(self):
        with pytest.raises(ValueError, match="resume_after must be >= 1"):
            Preemption(round=1, job="a", resume_after=0)

    def test_arrival_needs_name(self):
        with pytest.raises(ValueError, match="name must be non-empty"):
            Arrival(round=0, name="", spec=None)


class TestPlanValidation:
    def test_duplicate_preemption_rejected(self):
        with pytest.raises(ValueError, match="duplicate preemption"):
            FaultPlan(
                preemptions=(
                    Preemption(round=1, job="a"),
                    Preemption(round=1, job="a", resume_after=2),
                )
            )

    def test_same_job_different_rounds_ok(self):
        plan = FaultPlan(
            preemptions=(
                Preemption(round=1, job="a"),
                Preemption(round=3, job="a"),
            )
        )
        assert len(plan.preemptions) == 2

    def test_duplicate_arrival_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate arrival names"):
            FaultPlan(
                arrivals=(
                    Arrival(round=0, name="x", spec=None),
                    Arrival(round=2, name="x", spec=None),
                )
            )


class TestFleetFaultMerge:
    def test_clean_round_is_none(self):
        plan = FaultPlan(crashes=(CrashFault(round=1, job="a"),))
        assert plan.fleet_faults(0, "a") is None
        assert plan.fleet_faults(1, "b") is None

    def test_crash_and_straggler_merge(self):
        plan = FaultPlan(
            crashes=(
                CrashFault(round=1, job="a", shard=3, lost_fraction=0.2),
                CrashFault(round=1, job="a", shard=1, lost_fraction=0.6),
            ),
            stragglers=(
                StragglerFault(round=1, job="a", shard=2, factor=2.0),
                StragglerFault(round=1, job="a", shard=2, factor=3.0),
            ),
        )
        faults = plan.fleet_faults(1, "a")
        assert faults.crashed_shards == (1, 3)  # sorted
        assert faults.straggler_factors == {2: 3.0}  # max factor wins
        assert faults.lost_fraction == 0.6  # worst case wins

    def test_straggler_only_uses_default_lost_fraction(self):
        plan = FaultPlan(
            stragglers=(StragglerFault(round=0, job="a", factor=2.0),)
        )
        assert plan.fleet_faults(0, "a").lost_fraction == 0.5


class TestPlanQueries:
    def test_events_at_round_are_name_sorted(self):
        plan = FaultPlan(
            preemptions=(
                Preemption(round=2, job="zeta"),
                Preemption(round=2, job="alpha"),
                Preemption(round=3, job="beta"),
            ),
            arrivals=(
                Arrival(round=1, name="y", spec=None),
                Arrival(round=1, name="x", spec=None),
            ),
        )
        assert [p.job for p in plan.preemptions_at(2)] == ["alpha", "zeta"]
        assert plan.preemptions_at(0) == []
        assert [a.name for a in plan.arrivals_at(1)] == ["x", "y"]

    def test_horizon(self):
        assert FaultPlan().horizon == -1
        plan = FaultPlan(
            crashes=(CrashFault(round=1, job="a"),),
            arrivals=(Arrival(round=5, name="x", spec=None),),
        )
        assert plan.horizon == 5


class TestSeeded:
    def test_same_seed_same_plan(self):
        a = FaultPlan.seeded(42, ["j0", "j1"], rounds=6)
        b = FaultPlan.seeded(42, ["j0", "j1"], rounds=6)
        assert a == b
        assert a.seed == 42

    def test_different_seed_different_plan(self):
        plans = {
            FaultPlan.seeded(s, ["j0", "j1"], rounds=8, crashes=2)
            for s in range(8)
        }
        assert len(plans) > 1

    def test_preemptions_never_at_round_zero(self):
        for seed in range(20):
            plan = FaultPlan.seeded(
                seed, ["j0", "j1", "j2"], rounds=5, preemptions=3
            )
            assert all(p.round >= 1 for p in plan.preemptions)

    def test_event_counts_and_bounds(self):
        plan = FaultPlan.seeded(
            7, ["a"], rounds=4, crashes=3, stragglers=2, max_shard=2
        )
        assert len(plan.crashes) == 3
        assert len(plan.stragglers) == 2
        assert all(0 <= c.round < 4 and c.shard < 2 for c in plan.crashes)
        assert all(s.factor >= 1.5 for s in plan.stragglers)

    def test_input_validation(self):
        with pytest.raises(ValueError, match="at least one job"):
            FaultPlan.seeded(0, [], rounds=4)
        with pytest.raises(ValueError, match="rounds must be positive"):
            FaultPlan.seeded(0, ["a"], rounds=0)
