"""Tests for the ReaderTier fleet."""

import pytest

from repro.datagen import DatasetSchema, SparseFeatureSpec
from repro.reader import DataLoaderConfig, ReaderTier

from tests.conftest import land_samples, make_trace


def _schema():
    return DatasetSchema(
        sparse=(SparseFeatureSpec("f", avg_length=6, change_prob=0.1),)
    )


def _table(seed=0):
    schema = _schema()
    samples = make_trace(schema, sessions=40, seed=seed)
    table = land_samples(schema, samples, rows_per_file=128, stripe_rows=32)
    return table, samples


def _cfg():
    return DataLoaderConfig(batch_size=32, sparse_features=("f",))


class TestReaderTier:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReaderTier(0, _cfg())

    def test_covers_all_files(self):
        table, samples = _table()
        tier = ReaderTier(3, _cfg())
        batches = tier.run(table.open_readers("p"))
        # each file yields floor(rows/32) full batches per node
        assert tier.report.batches == len(batches)
        assert tier.report.samples == 32 * len(batches)
        assert tier.report.samples > 0

    def test_more_readers_than_files(self):
        table, _ = _table(seed=1)
        files = table.open_readers("p")
        tier = ReaderTier(len(files) + 5, _cfg())
        batches = tier.run(files)
        assert len(batches) > 0

    def test_aggregate_equals_sum_of_nodes(self):
        table, _ = _table(seed=2)
        tier = ReaderTier(2, _cfg())
        tier.run(table.open_readers("p"))
        assert tier.report.cpu.total == pytest.approx(
            sum(n.report.cpu.total for n in tier.nodes)
        )
        assert tier.report.read_bytes == sum(
            n.report.read_bytes for n in tier.nodes
        )

    def test_wall_clock_is_slowest_node(self):
        table, _ = _table(seed=3)
        tier = ReaderTier(2, _cfg())
        tier.run(table.open_readers("p"))
        assert tier.wall_clock_seconds == pytest.approx(
            max(n.report.cpu.total for n in tier.nodes)
        )

    def test_scaling_out_cuts_wall_clock(self):
        """The deployed system's premise: more readers, less latency."""
        table, _ = _table(seed=4)
        one = ReaderTier(1, _cfg())
        one.run(table.open_readers("p"))
        many = ReaderTier(4, _cfg())
        many.run(table.open_readers("p"))
        assert many.wall_clock_seconds < one.wall_clock_seconds

    def test_empty_tier_wall_clock(self):
        tier = ReaderTier(2, _cfg())
        assert tier.wall_clock_seconds >= 0.0
        assert tier.run([]) == []
