"""Integration tests for the §7 partial-IKJT path through the reader and
trainer."""

import numpy as np
import pytest

from repro.reader import DataLoaderConfig, apply_transforms, convert_rows
from repro.trainer import DLRM, DLRMConfig, TrainerOptFlags

from tests.conftest import make_reader_schema, make_trace


def _schema():
    # hist shifts often here (change_prob 0.3): the regime where partial
    # dedup wins over exact dedup
    return make_reader_schema(hist_avg_length=12, hist_change_prob=0.3)


def _rows(n=48, seed=0):
    samples = make_trace(_schema(), sessions=20, seed=seed, clustered=True)
    return samples[:n]


def _partial_cfg(transforms=()):
    return DataLoaderConfig(
        batch_size=48,
        sparse_features=("item",),
        partial_dedup_sparse_features=("hist",),
        dense_features=("d",),
        transforms=transforms,
    )


class TestConfig:
    def test_feature_in_partial_and_plain_rejected(self):
        with pytest.raises(ValueError):
            DataLoaderConfig(
                batch_size=1,
                sparse_features=("a",),
                partial_dedup_sparse_features=("a",),
            )

    def test_feature_in_partial_and_exact_rejected(self):
        with pytest.raises(ValueError):
            DataLoaderConfig(
                batch_size=1,
                dedup_sparse_features=(("a",),),
                partial_dedup_sparse_features=("a",),
            )

    def test_all_sparse_names_includes_partial(self):
        cfg = _partial_cfg()
        assert set(cfg.all_sparse_names) == {"item", "hist"}

    def test_without_dedup_flattens(self):
        base = _partial_cfg().without_dedup()
        assert base.partial_dedup_sparse_features == ()
        assert set(base.sparse_features) == {"item", "hist"}


class TestConvert:
    def test_partial_batch_lossless(self):
        rows = _rows()
        batch, stats = convert_rows(rows, _partial_cfg())
        assert batch.partial is not None
        assert stats.values_hashed > 0
        expanded = batch.to_kjt_only()
        for i, r in enumerate(rows):
            np.testing.assert_array_equal(
                expanded.kjt["hist"].row(i), r.sparse["hist"]
            )

    def test_partial_shrinks_wire_bytes(self):
        rows = _rows()
        partial_batch, _ = convert_rows(rows, _partial_cfg())
        plain_batch, _ = convert_rows(
            rows, _partial_cfg().without_dedup()
        )
        assert partial_batch.wire_nbytes < plain_batch.wire_nbytes

    def test_partial_beats_exact_on_shifted_feature(self):
        """hist shifts often (change_prob 0.3): partial captures the
        shifted lists exact dedup cannot."""
        rows = _rows()
        partial_batch, _ = convert_rows(rows, _partial_cfg())
        exact_cfg = DataLoaderConfig(
            batch_size=48,
            sparse_features=("item",),
            dedup_sparse_features=(("hist",),),
            dense_features=("d",),
        )
        exact_batch, _ = convert_rows(rows, exact_cfg)
        partial_values = partial_batch.partial["hist"].total_values
        exact_values = exact_batch.ikjts[0]["hist"].total_values
        assert partial_values < exact_values


class TestTransforms:
    def test_elementwise_transform_over_partial(self):
        rows = _rows()
        batch, _ = convert_rows(rows, _partial_cfg(("hash_modulo",)))
        out, stats = apply_transforms(batch, ("hash_modulo",))
        assert stats.values_processed > 0
        # equivalence with the plain path
        plain, _ = convert_rows(rows, _partial_cfg().without_dedup())
        plain_out, _ = apply_transforms(plain, ("hash_modulo",))
        expanded = out.to_kjt_only()
        assert expanded.kjt["hist"] == plain_out.kjt["hist"]

    def test_structural_transform_rejected(self):
        rows = _rows()
        batch, _ = convert_rows(rows, _partial_cfg())
        with pytest.raises(ValueError):
            apply_transforms(batch, ("truncate_length",))


class TestThroughReaderNode:
    def test_partial_config_through_landed_table(self):
        """The §7 path must work over real stored data, not just in-memory
        rows: land a partition, read it with a partial config, verify
        losslessness and the wire saving."""
        from repro.reader import ReaderNode

        from tests.conftest import land_samples

        schema = _schema()
        samples = _rows(n=96, seed=6)
        table = land_samples(
            schema, samples, rows_per_file=256, stripe_rows=32
        )

        cfg = DataLoaderConfig(
            batch_size=48,
            sparse_features=("item",),
            partial_dedup_sparse_features=("hist",),
            dense_features=("d",),
            transforms=("hash_modulo",),
        )
        node = ReaderNode(cfg)
        batches = node.run_all(table.open_readers("p"))
        assert batches and all(b.partial is not None for b in batches)

        plain_node = ReaderNode(cfg.without_dedup())
        plain_batches = plain_node.run_all(table.open_readers("p"))
        assert node.report.send_bytes < plain_node.report.send_bytes
        for pb, qb in zip(plain_batches, batches):
            expanded = qb.to_kjt_only()
            assert expanded.kjt["hist"] == pb.kjt["hist"]


class TestTraining:
    def test_partial_training_matches_plain(self):
        schema = _schema()
        cfg = DLRMConfig(
            embedding_dim=8,
            bottom_mlp=(8, 8),
            top_mlp=(8, 1),
            num_dense=1,
            max_table_rows=200,
            seed=2,
        )
        plain_model = DLRM(list(schema.sparse), cfg, TrainerOptFlags.baseline())
        partial_model = DLRM(list(schema.sparse), cfg, TrainerOptFlags.baseline())
        rows = _rows(seed=4)
        plain_batch, _ = convert_rows(rows, _partial_cfg().without_dedup())
        partial_batch, _ = convert_rows(rows, _partial_cfg())
        lp = plain_model.train_step(plain_batch)
        lq = partial_model.train_step(partial_batch)
        assert lp == pytest.approx(lq, rel=1e-9)
        for a, b in zip(
            plain_model.sparse_arch.tables(),
            partial_model.sparse_arch.tables(),
        ):
            np.testing.assert_allclose(a.weight, b.weight, atol=1e-10)
