"""Shared reader tier: allocation invariants, fairness, admission.

The scheduler's two contract-level properties are enforced here with
hypothesis: every round's worker allocation sums to the fleet width,
and no admitted job is ever starved for more than one consecutive
scheduling round.  The rest covers admission errors and the tier's
end-to-end schedule over real landed tables.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reader import (
    DataLoaderConfig,
    SharedReaderTier,
    TierJob,
    allocate_workers,
)
from tests.conftest import land_samples, make_reader_schema, make_trace


def _dl_config(batch_size: int = 32) -> DataLoaderConfig:
    return DataLoaderConfig(
        batch_size=batch_size,
        sparse_features=("hist", "item"),
        dense_features=("d",),
        transforms=("hash_modulo",),
    )


def _landed():
    schema = make_reader_schema()
    samples = make_trace(schema, sessions=40)
    return land_samples(schema, samples)


# -- allocate_workers properties -------------------------------------------

#: a width plus a schedulable job set (at most 2 * width jobs)
_width_and_jobs = st.integers(1, 12).flatmap(
    lambda width: st.tuples(
        st.just(width),
        st.lists(
            st.sampled_from([f"j{i}" for i in range(24)]),
            min_size=1,
            max_size=2 * width,
            unique=True,
        ),
    )
)


class TestAllocateWorkers:
    @settings(max_examples=200, deadline=None)
    @given(
        _width_and_jobs,
        st.integers(0, 100),
        st.sampled_from(["round_robin", "stall_weighted"]),
        st.dictionaries(
            st.sampled_from([f"j{i}" for i in range(24)]),
            st.floats(0.0, 100.0),
        ),
    )
    def test_sums_to_width_and_is_deterministic(
        self, width_jobs, cursor, policy, demand
    ):
        width, jobs = width_jobs
        alloc = allocate_workers(
            width, jobs, demand=demand, policy=policy, cursor=cursor
        )
        assert set(alloc) == set(jobs)
        assert sum(alloc.values()) == width
        assert all(w >= 0 for w in alloc.values())
        again = allocate_workers(
            width, jobs, demand=demand, policy=policy, cursor=cursor
        )
        assert alloc == again

    @settings(max_examples=200, deadline=None)
    @given(
        _width_and_jobs,
        st.sampled_from(["round_robin", "stall_weighted"]),
        st.dictionaries(
            st.sampled_from([f"j{i}" for i in range(24)]),
            st.floats(0.0, 100.0),
        ),
        st.integers(2, 12),
    )
    def test_never_starves_twice_in_a_row(
        self, width_jobs, policy, demand, rounds
    ):
        """Simulate the scheduler loop: a job skipped in one round must
        receive at least one worker in the next."""
        width, jobs = width_jobs
        starved: set[str] = set()
        for cursor in range(rounds):
            alloc = allocate_workers(
                width,
                jobs,
                starved=starved,
                demand=demand,
                policy=policy,
                cursor=cursor,
            )
            now_starved = {name for name, w in alloc.items() if w == 0}
            assert not (starved & now_starved), (
                f"jobs {starved & now_starved} starved two rounds in a "
                f"row (width {width}, {len(jobs)} jobs)"
            )
            starved = now_starved

    def test_every_job_guaranteed_one_when_pool_is_wide(self):
        alloc = allocate_workers(8, ["a", "b", "c"], demand={"a": 100.0})
        assert all(w >= 1 for w in alloc.values())
        assert sum(alloc.values()) == 8

    def test_stall_weighted_follows_demand(self):
        alloc = allocate_workers(
            8,
            ["heavy", "light"],
            demand={"heavy": 3.0, "light": 1.0},
            policy="stall_weighted",
        )
        assert alloc["heavy"] > alloc["light"]
        assert sum(alloc.values()) == 8

    def test_stall_weighted_cold_start_falls_back_to_even(self):
        """A candidate with no observed demand forces the even split."""
        alloc = allocate_workers(
            8, ["seen", "new"], demand={"seen": 5.0}, policy="stall_weighted"
        )
        assert alloc == {"seen": 4, "new": 4}

    def test_round_robin_rotates_the_remainder(self):
        first = allocate_workers(3, ["a", "b"], policy="round_robin", cursor=0)
        second = allocate_workers(3, ["a", "b"], policy="round_robin", cursor=1)
        assert first != second
        assert sum(first.values()) == sum(second.values()) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            allocate_workers(0, ["a"])
        with pytest.raises(ValueError):
            allocate_workers(4, ["a"], policy="fifo")
        with pytest.raises(ValueError):
            allocate_workers(4, ["a", "a"])
        assert allocate_workers(4, []) == {}


class TestJobWeights:
    """Per-job scheduling weights scale the stall-weighted demand
    signal; the fairness floor and sum-to-width invariant survive."""

    def test_weight_scales_equal_demand(self):
        alloc = allocate_workers(
            10,
            ["heavy", "light"],
            demand={"heavy": 1.0, "light": 1.0},
            weights={"heavy": 3.0, "light": 1.0},
        )
        # 8 surplus workers split 3:1 -> 6 vs 2, plus the guaranteed 1
        assert alloc == {"heavy": 7, "light": 3}

    def test_default_weight_is_identity(self):
        base = allocate_workers(
            9, ["a", "b", "c"], demand={"a": 4.0, "b": 2.0, "c": 1.0}
        )
        explicit = allocate_workers(
            9,
            ["a", "b", "c"],
            demand={"a": 4.0, "b": 2.0, "c": 1.0},
            weights={"a": 1.0, "b": 1.0, "c": 1.0},
        )
        assert base == explicit

    def test_fairness_floor_survives_extreme_weights(self):
        alloc = allocate_workers(
            4,
            ["vip", "x", "y"],
            demand={"vip": 1.0, "x": 1.0, "y": 1.0},
            weights={"vip": 1e6},
        )
        assert all(w >= 1 for w in alloc.values())
        assert sum(alloc.values()) == 4

    def test_cold_start_still_splits_evenly(self):
        """Weights scale *observed demand*; with no demand signal the
        round falls back to the unweighted even split."""
        alloc = allocate_workers(
            8, ["a", "b"], weights={"a": 5.0, "b": 1.0}
        )
        assert alloc == {"a": 4, "b": 4}

    def test_weight_breaks_priority_ties_when_oversubscribed(self):
        """More jobs than workers: the weight-scaled demand decides who
        gets the scarce single workers first."""
        alloc = allocate_workers(
            1,
            ["a", "b"],
            demand={"a": 1.0, "b": 1.0},
            weights={"a": 1.0, "b": 2.0},
        )
        assert alloc == {"a": 0, "b": 1}

    @settings(max_examples=100, deadline=None)
    @given(
        _width_and_jobs,
        st.dictionaries(
            st.sampled_from([f"j{i}" for i in range(24)]),
            st.floats(0.0, 100.0),
        ),
        st.dictionaries(
            st.sampled_from([f"j{i}" for i in range(24)]),
            st.floats(0.1, 10.0),
        ),
    )
    def test_invariants_hold_under_weights(self, width_jobs, demand, weights):
        width, jobs = width_jobs
        alloc = allocate_workers(
            width, jobs, demand=demand, weights=weights
        )
        assert sum(alloc.values()) == width
        if len(jobs) <= width:
            assert all(w >= 1 for w in alloc.values())

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            allocate_workers(4, ["a"], weights={"a": 0.0})
        with pytest.raises(ValueError, match="positive"):
            allocate_workers(4, ["a"], weights={"a": -1.0})


# -- SharedReaderTier ------------------------------------------------------


class TestAdmission:
    def test_rejects_duplicate_and_empty_names(self):
        tier = SharedReaderTier(2)
        table = _landed()
        job = TierJob("a", table, _dl_config(), epochs=[["p"]])
        tier.register(job)
        with pytest.raises(ValueError, match="already registered"):
            tier.register(TierJob("a", table, _dl_config(), epochs=[["p"]]))
        with pytest.raises(ValueError, match="non-empty"):
            tier.register(TierJob("", table, _dl_config(), epochs=[["p"]]))

    def test_rejects_unschedulable_job_count(self):
        tier = SharedReaderTier(1)
        table = _landed()
        tier.register(TierJob("a", table, _dl_config(), epochs=[["p"]]))
        tier.register(TierJob("b", table, _dl_config(), epochs=[["p"]]))
        with pytest.raises(ValueError, match="admission refused"):
            tier.register(TierJob("c", table, _dl_config(), epochs=[["p"]]))

    def test_rejects_dead_partitions_and_empty_plans(self):
        tier = SharedReaderTier(2)
        table = _landed()
        with pytest.raises(ValueError, match="not live"):
            tier.register(
                TierJob("a", table, _dl_config(), epochs=[["nope"]])
            )
        with pytest.raises(ValueError, match="empty epoch plan"):
            tier.register(TierJob("a", table, _dl_config(), epochs=[]))

    def test_rejects_epoch_smaller_than_a_batch(self):
        tier = SharedReaderTier(2)
        table = _landed()
        with pytest.raises(ValueError, match="cannot fill one batch"):
            tier.register(
                TierJob(
                    "a", table, _dl_config(batch_size=100_000), epochs=[["p"]]
                )
            )

    def test_rejects_sub_batch_partitions_even_when_rows_sum_past_a_batch(
        self,
    ):
        """Batches are partition-aligned: two partitions each below the
        batch size yield zero batches even if their summed rows don't."""
        schema = make_reader_schema()
        samples = make_trace(schema, sessions=40)
        table = land_samples(schema, samples[:20])
        table.land_partition("q", samples[20:40])
        batch = 25  # each partition has 20 rows: 20 + 20 > 25 > 20
        tier = SharedReaderTier(2)
        with pytest.raises(ValueError, match="cannot fill one batch"):
            tier.register(
                TierJob(
                    "a",
                    table,
                    _dl_config(batch_size=batch),
                    epochs=[["p", "q"]],
                )
            )

    def test_tier_validation(self):
        with pytest.raises(ValueError):
            SharedReaderTier(0)
        with pytest.raises(ValueError):
            SharedReaderTier(2, policy="lifo")
        with pytest.raises(ValueError):
            SharedReaderTier(8, autoscale=True, max_readers=4)

    def test_rejects_non_positive_job_weight(self):
        tier = SharedReaderTier(2)
        with pytest.raises(ValueError, match="weight"):
            tier.register(
                TierJob(
                    "a", _landed(), _dl_config(), epochs=[["p"]], weight=0.0
                )
            )

    def test_declared_stream_admits_unlanded_partitions(self):
        """A lazy-landing job (retention) validates its plan against
        partition_rows, not the live table — and still rejects plans
        naming partitions outside the declared stream."""
        tier = SharedReaderTier(2)
        table = _landed()
        tier.register(
            TierJob(
                "lazy",
                table,
                _dl_config(),
                epochs=[["p"], ["future"]],
                partition_rows={"p": 40, "future": 40},
            )
        )
        with pytest.raises(ValueError, match="not live"):
            tier.register(
                TierJob(
                    "bad",
                    table,
                    _dl_config(),
                    epochs=[["nowhere"]],
                    partition_rows={"p": 40},
                )
            )
        with pytest.raises(ValueError, match="cannot fill one batch"):
            tier.register(
                TierJob(
                    "tiny",
                    table,
                    _dl_config(),
                    epochs=[["p"]],
                    partition_rows={"p": 3},
                )
            )


class TestPrepareHook:
    def test_prepare_runs_before_each_scheduled_epoch(self):
        """The lifecycle hook lands lazily: epoch 1's partition does
        not exist at registration and is landed by prepare just in
        time."""
        schema = make_reader_schema()
        samples = make_trace(schema, sessions=40)
        table = land_samples(schema, samples[:20])  # lands "p" only
        prepared = []

        def prepare(epoch: int) -> None:
            prepared.append(epoch)
            if epoch == 1 and "q" not in table.partitions:
                table.land_partition("q", samples[20:40])

        tier = SharedReaderTier(2)
        tier.register(
            TierJob(
                "lazy",
                table,
                _dl_config(batch_size=10),
                epochs=[["p"], ["q"]],
                executor="inprocess",
                prepare=prepare,
                partition_rows={"p": 20, "q": 20},
            )
        )
        report = tier.run()
        assert prepared == [0, 1]
        assert len(report.rounds) == 2
        assert tier.job_fleets["lazy"].merged.batches == 4


class TestSchedule:
    def _tier(self, num_jobs: int, width: int, **kw) -> SharedReaderTier:
        kw.setdefault("policy", "round_robin")
        tier = SharedReaderTier(width, **kw)
        table = _landed()
        for i in range(num_jobs):
            tier.register(
                TierJob(
                    f"job{i}",
                    table,
                    _dl_config(),
                    epochs=[["p"], ["p"]],
                    max_batches=2,
                    executor="inprocess",
                )
            )
        return tier

    def test_allocations_sum_to_width_every_round(self):
        tier = self._tier(num_jobs=3, width=4)
        report = tier.run()
        for rnd in report.rounds:
            assert sum(rnd.allocation.values()) == rnd.width

    def test_oversubscribed_tier_never_starves_twice(self):
        """4 jobs on a 2-wide pool: every round schedules 2 jobs, and
        the skipped pair always leads the next round."""
        tier = self._tier(num_jobs=4, width=2)
        report = tier.run()
        for name in report.jobs:
            assert report.max_consecutive_skips(name) <= 1
        # every job still trained its full epoch plan
        for name in report.jobs:
            assert len(report.job_rounds(name)) == 2

    def test_drain_without_consumer(self):
        tier = self._tier(num_jobs=2, width=2)
        report = tier.run()
        assert all(
            s.trainer_busy_seconds == 0.0
            for rnd in report.rounds
            for s in rnd.stats
        )
        assert report.modeled_wall_seconds > 0
        merged = tier.job_fleets["job0"].merged
        assert merged.batches == 4  # 2 epochs x max_batches=2

    def test_runs_only_once(self):
        tier = self._tier(num_jobs=2, width=2)
        tier.run()
        with pytest.raises(RuntimeError, match="already ran"):
            tier.run()
        with pytest.raises(RuntimeError, match="already ran"):
            tier.register(
                TierJob("late", _landed(), _dl_config(), epochs=[["p"]])
            )

    def test_no_jobs_raises(self):
        with pytest.raises(ValueError, match="no jobs"):
            SharedReaderTier(2).run()

    def test_open_loop_equals_run(self):
        """start/step/finish is exactly run(), decomposed."""
        closed = self._tier(num_jobs=3, width=2).run()
        tier = self._tier(num_jobs=3, width=2)
        tier.start()
        while tier.step():
            pass
        opened = tier.finish()
        assert opened.as_rows() == closed.as_rows()

    def test_open_loop_guards(self):
        tier = self._tier(num_jobs=2, width=2)
        with pytest.raises(RuntimeError, match="open scheduling loop"):
            tier.step()
        with pytest.raises(RuntimeError, match="open scheduling loop"):
            tier.finish()
        tier.start()
        with pytest.raises(RuntimeError, match="already ran"):
            tier.start()
        tier.finish()
        with pytest.raises(RuntimeError, match="open scheduling loop"):
            tier.step()
        with pytest.raises(RuntimeError, match="open scheduling loop"):
            tier.finish()

    def test_autoscale_keeps_fairness_floor(self):
        """An autoscaled tier never shrinks below ceil(jobs / 2), so
        the one-round starvation bound survives pool resizing."""
        tier = self._tier(
            num_jobs=4, width=4, autoscale=True, max_readers=8
        )
        report = tier.run()
        assert report.scaling is not None
        assert all(w >= 2 for w in report.widths)
        for d in report.scaling.decisions:
            assert d.width_after >= 2


class TestChurn:
    """Preemption and re-admission: names free up, progress is
    recorded, and a re-admitted job enters with strict next-round
    priority — the one-round starvation bound survives churn."""

    def _job(self, name: str, table) -> TierJob:
        return TierJob(
            name,
            table,
            _dl_config(),
            epochs=[["p"], ["p"]],
            max_batches=2,
            executor="inprocess",
        )

    def _open_tier(self, names, width: int):
        tier = SharedReaderTier(width, policy="round_robin")
        table = _landed()
        for name in names:
            tier.register(self._job(name, table))
        tier.start()
        return tier, table

    def test_preempt_frees_name_and_records_progress(self):
        tier, table = self._open_tier(["a", "b"], width=2)
        assert tier.step()
        assert tier.epochs_completed("a") == 1
        assert tier.preempt("a") == 1
        assert tier.preempted == {"a": 1}
        with pytest.raises(KeyError, match="no registered job named 'a'"):
            tier.epochs_completed("a")
        # The name is free again: a successor can take it mid-run.
        tier.register(self._job("a", table))
        assert tier.epochs_completed("a") == 0
        while tier.step():
            pass
        report = tier.finish()
        assert len(report.job_rounds("b")) == 2

    def test_preempt_unknown_job_raises(self):
        tier, _ = self._open_tier(["a"], width=2)
        with pytest.raises(KeyError, match="cannot preempt unknown job"):
            tier.preempt("ghost")
        tier.finish()
        with pytest.raises(RuntimeError, match="nothing left to preempt"):
            tier.preempt("a")

    def test_readmitted_job_gets_strict_next_round_priority(self):
        """An oversubscribed pool: the re-admitted job must be among
        the very next round's scheduled set, whatever the rotation."""
        tier, table = self._open_tier(["a", "b", "c"], width=2)
        assert tier.step()  # round 0: two scheduled, one skipped
        tier.preempt("c")
        tier.register(self._job("c", table))
        idx = tier.round_index
        assert tier.step()
        report_round = tier._rounds[idx]
        assert report_round.allocation["c"] >= 1
        while tier.step():
            pass
        tier.finish()

    def test_mid_run_admission_respects_the_cap(self):
        tier, table = self._open_tier(["a", "b"], width=1)
        assert tier.step()
        with pytest.raises(ValueError, match="admission refused"):
            tier.register(self._job("c", table))
        # Preempting a job frees its admission slot for the newcomer.
        tier.preempt("b")
        tier.register(self._job("c", table))
        while tier.step():
            pass
        report = tier.finish()
        assert len(report.job_rounds("c")) == 2

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        width=st.integers(1, 3),
        churn_events=st.integers(1, 3),
    )
    def test_churned_job_never_starves_two_rounds(
        self, seed, width, churn_events
    ):
        """Any preempt/re-admit schedule keeps both invariants: round
        allocations sum to the width, and no job — including every
        re-admitted one — is skipped twice in a row."""
        import random

        rng = random.Random(seed)
        names = [f"j{i}" for i in range(2 * width)]
        tier = SharedReaderTier(width, policy="round_robin")
        table = _landed()
        for name in names:
            tier.register(self._job(name, table))
        tier.start()
        remaining = churn_events
        while True:
            if remaining and tier.round_index >= 1 and rng.random() < 0.5:
                victim = rng.choice(sorted(tier._jobs))
                tier.preempt(victim)
                tier.register(self._job(victim, table))
                remaining -= 1
            if not tier.step():
                break
        report = tier.finish()
        for rnd in report.rounds:
            assert sum(rnd.allocation.values()) == rnd.width
        for name in report.jobs:
            assert report.max_consecutive_skips(name) <= 1, (
                f"{name} starved twice (seed {seed}, width {width})"
            )
