"""Tests for fill batching, the reader node pipeline, and tier planning."""

import numpy as np
import pytest

from repro.reader import (
    DataLoaderConfig,
    ReaderNode,
    fill_batches,
    readers_required,
)


class TestFillBatches:
    def test_batches_cover_rows_in_order(self, landed_table):
        table, samples = landed_table(seed=1)
        readers = table.open_readers("p")
        got = []
        for rows, _ in fill_batches(readers, 64):
            got.extend(rows)
        assert [s.sample_id for s in got] == [
            s.sample_id for s in samples[: len(got)]
        ]

    def test_drop_last(self, landed_table):
        table, samples = landed_table(seed=2)
        readers = table.open_readers("p")
        batches = list(fill_batches(readers, 50))
        assert all(len(rows) == 50 for rows, _ in batches)

    def test_keep_last(self, landed_table):
        table, samples = landed_table(seed=2)
        readers = table.open_readers("p")
        total = sum(
            len(rows)
            for rows, _ in fill_batches(readers, 50, drop_last=False)
        )
        assert total == len(samples)

    def test_incremental_stats(self, landed_table):
        table, _ = landed_table(seed=3)
        readers = table.open_readers("p")
        stats = [s for _, s in fill_batches(readers, 64)]
        assert all(s.compressed_bytes >= 0 for s in stats)
        total_comp = sum(s.compressed_bytes for s in stats)
        assert total_comp > 0
        # incremental deltas must sum to the readers' final counters
        assert total_comp <= sum(r.bytes_read for r in readers)

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(fill_batches([], 0))


class TestReaderNode:
    def _config(self, dedup: bool) -> DataLoaderConfig:
        if dedup:
            return DataLoaderConfig(
                batch_size=128,
                sparse_features=("item",),
                dedup_sparse_features=(("hist",),),
                dense_features=("d",),
                transforms=("hash_modulo",),
            )
        return DataLoaderConfig(
            batch_size=128,
            sparse_features=("item", "hist"),
            dense_features=("d",),
            transforms=("hash_modulo",),
        )

    def test_pipeline_produces_batches(self, landed_table):
        table, samples = landed_table(seed=4)
        node = ReaderNode(self._config(dedup=False))
        batches = node.run_all(table.open_readers("p"))
        assert node.report.batches == len(batches)
        assert node.report.samples == 128 * len(batches)
        assert node.report.cpu.total > 0
        assert node.report.read_bytes > 0
        assert node.report.send_bytes > 0

    def test_max_batches(self, landed_table):
        table, _ = landed_table(seed=4)
        node = ReaderNode(self._config(dedup=False))
        batches = node.run_all(table.open_readers("p"), max_batches=2)
        assert len(batches) == 2

    def test_clustered_table_reduces_fill_time(self, landed_table):
        """O2 at the reader: same rows, clustered -> fewer compressed bytes
        -> less fill CPU (paper: -33..50%)."""
        base_table, _ = landed_table(seed=5)
        clus_table, _ = landed_table(clustered=True, seed=5)
        cfg = self._config(dedup=False)
        base_node, clus_node = ReaderNode(cfg), ReaderNode(cfg)
        base_node.run_all(base_table.open_readers("p"))
        clus_node.run_all(clus_table.open_readers("p"))
        assert clus_node.report.cpu.fill < base_node.report.cpu.fill
        assert clus_node.report.read_bytes < base_node.report.read_bytes

    def test_dedup_cuts_send_bytes_and_process_time(self, landed_table):
        """O3+O4 on a clustered table: deduped output is smaller on the
        wire and cheaper to preprocess, at some convert overhead."""
        table, _ = landed_table(clustered=True, seed=6)
        plain, dedup = (
            ReaderNode(self._config(dedup=False)),
            ReaderNode(self._config(dedup=True)),
        )
        plain.run_all(table.open_readers("p"))
        dedup.run_all(table.open_readers("p"))
        assert dedup.report.send_bytes < plain.report.send_bytes
        assert dedup.report.cpu.process < plain.report.cpu.process
        assert dedup.report.cpu.convert > plain.report.cpu.convert
        # net effect: higher reader throughput (Fig 7)
        assert (
            dedup.report.samples_per_cpu_second
            > plain.report.samples_per_cpu_second
        )

    def test_batches_functionally_identical(self, landed_table):
        """IKJTs encode the exact same logical data as KJTs (§6.2)."""
        table, _ = landed_table(clustered=True, seed=7)
        plain = ReaderNode(self._config(dedup=False)).run_all(
            table.open_readers("p"), max_batches=3
        )
        dedup = ReaderNode(self._config(dedup=True)).run_all(
            table.open_readers("p"), max_batches=3
        )
        for pb, db in zip(plain, dedup):
            expanded = db.to_kjt_only()
            for key in ("hist", "item"):
                assert expanded.kjt[key] == pb.kjt[key]
            np.testing.assert_array_equal(pb.labels, db.labels)


class TestTier:
    def test_provisioning(self):
        plan = readers_required(1000, 100)
        assert plan.num_readers == 11  # 10% headroom

    def test_faster_readers_fewer_nodes(self):
        slow = readers_required(1000, 100).num_readers
        fast = readers_required(1000, 179).num_readers  # 1.79x (Fig 7 RM1)
        assert fast < slow

    def test_validation(self):
        with pytest.raises(ValueError):
            readers_required(-1, 10)
        with pytest.raises(ValueError):
            readers_required(10, 0)
        with pytest.raises(ValueError):
            readers_required(10, 10, headroom=0.5)

    def test_minimum_one_reader(self):
        assert readers_required(0, 100).num_readers == 1
