"""Tests for the reader-fleet autoscaler: the control law (grow /
shrink / hold), hysteresis, bounds, and trace reproducibility."""

import pytest

from repro.metrics import OverlapReport, ScalingDecision, ScalingTrace
from repro.reader import ReaderAutoscaler


def _overlap(reader_wall, trainer_busy):
    return OverlapReport.modeled(
        reader_wall_seconds=reader_wall, trainer_busy_seconds=trainer_busy
    )


class TestValidation:
    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            ReaderAutoscaler(0)
        with pytest.raises(ValueError):
            ReaderAutoscaler(1, min_readers=0)
        with pytest.raises(ValueError):
            ReaderAutoscaler(1, min_readers=4, max_readers=2)
        with pytest.raises(ValueError):
            ReaderAutoscaler(1, target_stall=0.0)
        with pytest.raises(ValueError):
            ReaderAutoscaler(1, target_stall=1.0)
        with pytest.raises(ValueError):
            ReaderAutoscaler(1, shrink_patience=0)
        with pytest.raises(ValueError):
            ReaderAutoscaler(1, shrink_trainer_stall=0.0)

    def test_initial_width_clamped(self):
        assert ReaderAutoscaler(100, max_readers=8).num_readers == 8
        assert ReaderAutoscaler(1, min_readers=2).num_readers == 2

    def test_decision_validation(self):
        with pytest.raises(ValueError):
            ScalingDecision(0, 0.5, 0.5, 1, "explode", 2)
        with pytest.raises(ValueError):
            ScalingDecision(0, 0.5, 0.5, 0, "grow", 2)


class TestControlLaw:
    def test_grows_proportionally_on_reader_stall(self):
        """Readers 4x slower than the trainer -> 4x the width."""
        scaler = ReaderAutoscaler(2, target_stall=0.10)
        new = scaler.observe(_overlap(reader_wall=4.0, trainer_busy=1.0))
        assert new == 8
        assert scaler.trace.actions == ["grow"]

    def test_grow_clamps_at_max_readers(self):
        scaler = ReaderAutoscaler(2, max_readers=4)
        assert scaler.observe(_overlap(100.0, 1.0)) == 4
        # still starving but can't grow further: hold, with the bound
        # named in the reason
        assert scaler.observe(_overlap(50.0, 1.0)) == 4
        last = scaler.trace.decisions[-1]
        assert last.action == "hold"
        assert "max_readers" in last.reason

    def test_holds_inside_band(self):
        scaler = ReaderAutoscaler(4, target_stall=0.10)
        # 5% stall: in band
        new = scaler.observe(_overlap(reader_wall=1.0, trainer_busy=0.95))
        assert new == 4
        assert scaler.trace.actions == ["hold"]

    def test_holds_on_empty_epoch(self):
        scaler = ReaderAutoscaler(4)
        assert scaler.observe(_overlap(0.0, 0.0)) == 4
        assert scaler.trace.actions == ["hold"]

    def test_shrink_requires_hysteresis(self):
        """One trainer-bound epoch must not shrink the fleet; two
        consecutive ones do, and the shrink is proportional."""
        scaler = ReaderAutoscaler(8, shrink_patience=2)
        assert scaler.observe(_overlap(0.25, 1.0)) == 8  # streak 1: hold
        assert scaler.trace.actions[-1] == "hold"
        assert scaler.observe(_overlap(0.25, 1.0)) == 2  # streak 2: shrink
        assert scaler.trace.actions[-1] == "shrink"

    def test_in_band_epoch_resets_shrink_streak(self):
        scaler = ReaderAutoscaler(8, shrink_patience=2)
        scaler.observe(_overlap(0.25, 1.0))  # shrink streak 1
        scaler.observe(_overlap(1.0, 1.0))  # balanced: streak resets
        assert scaler.observe(_overlap(0.25, 1.0)) == 8  # streak 1 again
        assert scaler.num_readers == 8

    def test_shrink_never_below_min(self):
        scaler = ReaderAutoscaler(
            4, min_readers=3, shrink_patience=1
        )
        assert scaler.observe(_overlap(0.01, 1.0)) == 3

    def test_grow_then_settle(self):
        """The driving scenario: reader-bound at width 1, one
        proportional grow lands in the band, then holds forever."""
        scaler = ReaderAutoscaler(1, target_stall=0.10)
        w = scaler.observe(_overlap(12.0, 1.0))
        assert w == 12
        for _ in range(3):
            # at width 12 the modeled reader wall matches the trainer
            w = scaler.observe(_overlap(1.0, 1.0))
        assert w == 12
        assert scaler.trace.actions == ["grow", "hold", "hold", "hold"]
        assert scaler.trace.converged_epoch == 1


class TestTrace:
    def test_records_every_field(self):
        scaler = ReaderAutoscaler(2, target_stall=0.10)
        scaler.observe(_overlap(4.0, 1.0), epoch=7)
        (d,) = scaler.trace.decisions
        assert d.epoch == 7
        assert d.width_before == 2 and d.width_after == 8
        assert d.action == "grow"
        assert d.reader_stall_fraction == pytest.approx(0.75)
        assert d.trainer_stall_fraction == pytest.approx(0.25)
        assert "target" in d.reason

    def test_as_rows_roundtrip(self):
        scaler = ReaderAutoscaler(1)
        scaler.observe(_overlap(3.0, 1.0))
        scaler.observe(_overlap(1.0, 1.0))
        rows = scaler.trace.as_rows()
        assert [r["epoch"] for r in rows] == [0, 1]
        assert rows[0]["action"] == "grow"
        assert scaler.trace.widths == [1, 3]
        assert scaler.trace.final_width == 3

    def test_converged_epoch_requires_staying_in_band(self):
        trace = ScalingTrace(target_stall=0.10)

        def mk(e, rs):
            return ScalingDecision(e, rs, 1 - rs, 1, "hold", 1)

        trace.record(mk(0, 0.05))  # in band...
        trace.record(mk(1, 0.50))  # ...but leaves it
        trace.record(mk(2, 0.02))
        trace.record(mk(3, 0.01))
        assert trace.converged_epoch == 2
        assert ScalingTrace(target_stall=0.1).converged_epoch is None

    def test_identical_inputs_identical_traces(self):
        """The determinism contract: same observations -> same trace."""
        a = ReaderAutoscaler(1)
        b = ReaderAutoscaler(1)
        inputs = [(5.0, 1.0), (1.0, 1.0), (0.2, 1.0), (0.2, 1.0)]
        for rw, tb in inputs:
            a.observe(_overlap(rw, tb))
            b.observe(_overlap(rw, tb))
        assert a.trace.as_rows() == b.trace.as_rows()


class TestEwmaSmoothing:
    def test_alpha_validation(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(
                ValueError, match=r"ewma_alpha must be in \(0, 1\]"
            ):
                ReaderAutoscaler(1, ewma_alpha=bad)

    def test_alpha_one_matches_unsmoothed(self):
        """alpha=1 is the identity: the controller steers on raw
        observations exactly as with smoothing off."""
        raw = ReaderAutoscaler(2)
        smoothed = ReaderAutoscaler(2, ewma_alpha=1.0)
        for rw, tb in [(4.0, 1.0), (1.0, 1.0), (0.1, 1.0)]:
            raw.observe(_overlap(rw, tb))
            smoothed.observe(_overlap(rw, tb))
        assert raw.trace.as_rows() == smoothed.trace.as_rows()

    def test_smoothing_damps_a_single_noisy_epoch(self):
        """One spiky epoch after calm history: the raw controller sizes
        for the spike, the EWMA controller for the damped average."""
        raw = ReaderAutoscaler(4, ewma_alpha=None)
        smoothed = ReaderAutoscaler(4, ewma_alpha=0.2)
        calm, spike = (1.0, 1.0), (8.0, 1.0)
        for obs in (calm, calm, calm):
            raw.observe(_overlap(*obs))
            smoothed.observe(_overlap(*obs))
        raw_width = raw.observe(_overlap(*spike))
        smoothed_width = smoothed.observe(_overlap(*spike))
        assert raw_width > smoothed_width > 4
        # The trace records the smoothed fractions it steered on.
        assert (
            smoothed.trace.decisions[-1].reader_stall_fraction
            < raw.trace.decisions[-1].reader_stall_fraction
        )

    def test_smoothed_decisions_are_deterministic(self):
        """EWMA state is pure arithmetic: same observation stream,
        bit-identical decision traces across two controllers."""
        a = ReaderAutoscaler(2, ewma_alpha=0.3)
        b = ReaderAutoscaler(2, ewma_alpha=0.3)
        inputs = [
            (5.0, 1.0),
            (1.0, 1.0),
            (7.0, 0.5),
            (0.2, 1.0),
            (0.2, 1.0),
            (3.0, 2.0),
        ]
        for rw, tb in inputs:
            a.observe(_overlap(rw, tb))
            b.observe(_overlap(rw, tb))
        assert a.trace.as_rows() == b.trace.as_rows()
        # Replaying from scratch reproduces the identical trace too.
        c = ReaderAutoscaler(2, ewma_alpha=0.3)
        for rw, tb in inputs:
            c.observe(_overlap(rw, tb))
        assert c.trace.as_rows() == a.trace.as_rows()

    def test_first_observation_seeds_the_average(self):
        """The first epoch is never diluted toward zero: seeding with
        the raw observation, the first decision matches unsmoothed."""
        raw = ReaderAutoscaler(2)
        smoothed = ReaderAutoscaler(2, ewma_alpha=0.1)
        assert raw.observe(_overlap(4.0, 1.0)) == smoothed.observe(
            _overlap(4.0, 1.0)
        )


class TestModeledOverlap:
    def test_reader_bound_attribution(self):
        ov = OverlapReport.modeled(4.0, 1.0)
        assert ov.wall_seconds == 4.0
        assert ov.reader_stall_fraction == pytest.approx(0.75)
        assert ov.queue.put_wait == 0.0
        assert sum(ov.fractions.values()) == pytest.approx(1.0)

    def test_trainer_bound_attribution(self):
        ov = OverlapReport.modeled(1.0, 4.0)
        assert ov.wall_seconds == 4.0
        assert ov.reader_stall_fraction == 0.0
        assert ov.trainer_stall_fraction == 1.0
        # readers idle 3s against full queues
        assert ov.queue.put_wait == pytest.approx(3.0)

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            OverlapReport.modeled(-1.0, 1.0)
