"""Tests for DataLoaderConfig and Batch."""

import numpy as np
import pytest

from repro.core import InverseKeyedJaggedTensor, KeyedJaggedTensor
from repro.reader import Batch, DataLoaderConfig


class TestDataLoaderConfig:
    def test_basic(self):
        cfg = DataLoaderConfig(
            batch_size=64,
            sparse_features=("a",),
            dedup_sparse_features=(("b",), ("c", "d")),
        )
        assert cfg.dedup_feature_names == ["b", "c", "d"]
        assert cfg.all_sparse_names == ["a", "b", "c", "d"]

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            DataLoaderConfig(batch_size=0)

    def test_feature_in_two_groups_rejected(self):
        with pytest.raises(ValueError):
            DataLoaderConfig(
                batch_size=1, dedup_sparse_features=(("a",), ("a", "b"))
            )

    def test_feature_both_plain_and_dedup_rejected(self):
        with pytest.raises(ValueError):
            DataLoaderConfig(
                batch_size=1,
                sparse_features=("a",),
                dedup_sparse_features=(("a",),),
            )

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            DataLoaderConfig(batch_size=1, dedup_sparse_features=((),))

    def test_without_dedup(self):
        cfg = DataLoaderConfig(
            batch_size=8,
            sparse_features=("a",),
            dedup_sparse_features=(("b", "c"),),
            transforms=("hash_modulo",),
        )
        base = cfg.without_dedup()
        assert base.dedup_sparse_features == ()
        assert set(base.sparse_features) == {"a", "b", "c"}
        assert base.transforms == cfg.transforms


def _kjt():
    return KeyedJaggedTensor.from_rows(
        [{"a": [1, 2], "b": [5]}, {"a": [1, 2], "b": [6]}]
    )


class TestBatch:
    def test_batch_size_consistency(self):
        kjt = _kjt()
        batch = Batch(
            dense=np.zeros((2, 3), dtype=np.float32),
            labels=np.zeros(2, dtype=np.float32),
            kjt=kjt,
        )
        assert batch.batch_size == 2
        assert batch.sparse_keys == ["a", "b"]

    def test_inconsistent_sizes_rejected(self):
        with pytest.raises(ValueError):
            Batch(
                dense=np.zeros((3, 1), dtype=np.float32),
                labels=np.zeros(2, dtype=np.float32),
            )

    def test_wire_bytes_includes_all_slices(self):
        kjt = _kjt()
        ikjt = InverseKeyedJaggedTensor.from_kjt(kjt, ["a"])
        batch = Batch(
            dense=np.zeros((2, 1), dtype=np.float32),
            labels=np.zeros(2, dtype=np.float32),
            kjt=kjt.select(["b"]),
            ikjts=[ikjt],
        )
        expected = (
            batch.dense.nbytes
            + batch.labels.nbytes
            + kjt.select(["b"]).nbytes
            + ikjt.nbytes
        )
        assert batch.wire_nbytes == expected

    def test_dedup_batch_smaller_on_wire(self):
        """A batch with duplicated rows ships fewer bytes as IKJT."""
        rows = [{"f": list(range(50))} for _ in range(16)]  # all identical
        kjt = KeyedJaggedTensor.from_rows(rows)
        dense = np.zeros((16, 1), dtype=np.float32)
        labels = np.zeros(16, dtype=np.float32)
        plain = Batch(dense=dense, labels=labels, kjt=kjt)
        dedup = Batch(
            dense=dense,
            labels=labels,
            ikjts=[InverseKeyedJaggedTensor.from_kjt(kjt)],
        )
        assert dedup.wire_nbytes < plain.wire_nbytes / 4

    def test_to_kjt_only_round_trip(self):
        kjt = _kjt()
        batch = Batch(
            dense=np.zeros((2, 1), dtype=np.float32),
            labels=np.zeros(2, dtype=np.float32),
            kjt=kjt.select(["b"]),
            ikjts=[InverseKeyedJaggedTensor.from_kjt(kjt, ["a"])],
        )
        expanded = batch.to_kjt_only()
        assert expanded.ikjts == []
        assert expanded.kjt["a"] == kjt["a"]
        assert expanded.kjt["b"] == kjt["b"]
