"""The async-executor equivalence wall.

The ``"async"`` executor is a single-process coroutine scheduler: it
interleaves every shard worker deterministically, models the bounded
prefetch queues virtually, and must be *bit-identical* to the other two
executors — batches, losses, and the merged byte accounting — at every
width, with and without session dedup, and under injected faults.  These
tests are that wall, plus the zero-copy transport accounting
(``copy`` charges ``bytes_copied`` and queue transport wait, ``shm``
records ``copies_avoided`` and charges nothing) and the exact
``fallback_reason`` recorded when the process executor degrades.
"""

import pytest

from repro.datagen.workloads import rm1
from repro.pipeline.session import Session
from repro.pipeline.spec import (
    DataSpec,
    JobSpec,
    ReaderSpec,
    TrainSpec,
    TransportSpec,
)
from repro.reader import FleetFaults, ReaderFleet
from repro.reader.fleet import FleetReport

from .test_fleet import _dedup_cfg, _plain_cfg, assert_batches_identical

WIDTHS = (1, 2, 4, 8)


def _fleet(width, cfg, **kw):
    return ReaderFleet(width, cfg, **kw)


def _accounting(report):
    """The merged counters that must agree across executors."""
    m = report.merged
    return (
        m.samples,
        m.batches,
        m.read_bytes,
        m.send_bytes,
        m.bytes_copied,
        m.copies_avoided,
        report.num_shards,
    )


class TestAsyncEquivalence:
    """Batches and accounting bit-identical across all three executors."""

    @pytest.mark.parametrize("width", WIDTHS)
    @pytest.mark.parametrize("dedup", [False, True])
    def test_async_matches_inprocess(self, landed_table, width, dedup):
        table, _ = landed_table(clustered=dedup, seed=11, stripe_rows=64)
        cfg = _dedup_cfg() if dedup else _plain_cfg()
        ref = _fleet(width, cfg, executor="inprocess")
        want = ref.run(table, "p")
        assert want  # the wall must actually exercise batches
        fleet = _fleet(width, cfg, executor="async")
        got = fleet.run(table, "p")
        assert_batches_identical(got, want)
        assert fleet.report.executor_used == "async"
        assert _accounting(fleet.report) == _accounting(ref.report)

    @pytest.mark.parametrize("width", [2, 4])
    def test_async_matches_process(self, landed_table, width):
        table, _ = landed_table(seed=12, stripe_rows=64)
        cfg = _plain_cfg()
        proc = _fleet(width, cfg, executor="process")
        want = proc.run(table, "p")
        fleet = _fleet(width, cfg, executor="async")
        got = fleet.run(table, "p")
        assert_batches_identical(got, want)
        # a locked-down platform may have degraded the process fleet,
        # but the byte accounting must agree either way
        assert proc.report.executor_used in (
            "process",
            "inprocess-fallback",
        )
        assert _accounting(fleet.report) == _accounting(proc.report)

    @pytest.mark.parametrize("width", WIDTHS)
    def test_max_batches_prefix(self, landed_table, width):
        table, _ = landed_table(seed=13, stripe_rows=64)
        cfg = _plain_cfg()
        want = _fleet(1, cfg, executor="inprocess").run(table, "p")
        fleet = _fleet(width, cfg, executor="async")
        got = fleet.run(table, "p", max_batches=3)
        assert_batches_identical(got, want[:3])


class TestAsyncFaults:
    """Fault injection runs natively on the async executor and lands the
    exact same perturbed accounting as the in-process executor."""

    FAULTS = FleetFaults(
        crashed_shards=(0,),
        straggler_factors={1: 3.0},
        lost_fraction=0.6,
    )

    def test_faulted_reports_bit_identical(self, landed_table):
        table, _ = landed_table(seed=14, stripe_rows=64)
        cfg = _plain_cfg()
        ref = _fleet(4, cfg, executor="inprocess", faults=self.FAULTS)
        want = ref.run(table, "p")
        fleet = _fleet(4, cfg, executor="async", faults=self.FAULTS)
        got = fleet.run(table, "p")
        assert_batches_identical(got, want)
        # every worker's full report — wasted CPU, straggler dilation,
        # crash respawn arithmetic — must match field for field
        assert [w.as_dict() for w in fleet.report.workers] == [
            w.as_dict() for w in ref.report.workers
        ]
        # faults stay on the requested executor instead of being forced
        # onto the serial one
        assert fleet.report.executor_used == "async"
        assert ref.report.executor_used == "inprocess"


class TestTransportAccounting:
    """copy charges bytes + queue wait; shm records avoided copies."""

    @pytest.mark.parametrize("executor", ["inprocess", "async"])
    def test_copy_charges_bytes_and_wait(self, landed_table, executor):
        table, _ = landed_table(seed=15, stripe_rows=64)
        fleet = _fleet(
            3, _plain_cfg(), executor=executor, transport="copy"
        )
        fleet.run(table, "p")
        merged = fleet.report.merged
        assert merged.bytes_copied == merged.send_bytes > 0
        assert merged.copies_avoided == 0
        assert fleet.report.queue.transport > 0.0

    @pytest.mark.parametrize("executor", ["inprocess", "async"])
    def test_shm_avoids_every_copy(self, landed_table, executor):
        table, _ = landed_table(seed=15, stripe_rows=64)
        fleet = _fleet(3, _plain_cfg(), executor=executor, transport="shm")
        fleet.run(table, "p")
        merged = fleet.report.merged
        assert merged.copies_avoided == merged.send_bytes > 0
        assert merged.bytes_copied == 0
        assert fleet.report.queue.transport == 0.0
        # zero transport charge: delivery never floors below decode
        assert (
            fleet.report.modeled_delivered_wall_seconds
            == fleet.report.modeled_wall_seconds
        )

    def test_transport_never_changes_batches(self, landed_table):
        table, _ = landed_table(seed=16, stripe_rows=64)
        cfg = _plain_cfg()
        copy = _fleet(4, cfg, executor="async", transport="copy")
        shm = _fleet(4, cfg, executor="async", transport="shm")
        assert_batches_identical(
            copy.run(table, "p"), shm.run(table, "p")
        )

    def test_delivered_wall_floors_at_transport(self):
        rep = FleetReport()
        rep.queue.transport = 5.0
        assert rep.modeled_delivered_wall_seconds == 5.0

    def test_transport_spec_validation(self):
        assert TransportSpec("copy").charges
        assert not TransportSpec("shm").charges
        with pytest.raises(ValueError, match="mode"):
            TransportSpec("rdma")
        with pytest.raises(TypeError):
            TransportSpec.coerce(42)


class TestSessionLossIdentity:
    """End-to-end: the training loss trajectory is executor-invariant."""

    def _spec(self, executor, *, width, dedup=False, transport="copy"):
        return JobSpec(
            data=DataSpec(
                workload=rm1(scale=0.25), num_sessions=80, seed=21
            ),
            reader=ReaderSpec(
                num_readers=width,
                executor=executor,
                dedup=dedup,
                transport=transport,
            ),
            train=TrainSpec(
                train_epochs=2, train_batches=None, batch_size=16
            ),
        )

    @pytest.mark.parametrize("width", [1, 8])
    @pytest.mark.parametrize("dedup", [False, True])
    def test_async_losses_match_inprocess(self, width, dedup):
        ref = Session(
            self._spec("inprocess", width=width, dedup=dedup)
        ).run()
        got = Session(self._spec("async", width=width, dedup=dedup)).run()
        assert got.training.losses == ref.training.losses
        assert got.training.losses

    def test_shm_losses_match_copy(self):
        ref = Session(self._spec("async", width=4, transport="copy")).run()
        got = Session(self._spec("async", width=4, transport="shm")).run()
        assert got.training.losses == ref.training.losses


class TestFallbackReason:
    """The process executor's degrade path records exactly why."""

    def test_fallback_records_exception_repr(
        self, landed_table, monkeypatch
    ):
        table, _ = landed_table(seed=17, stripe_rows=64)

        def boom(self, schema, shard_sources):
            raise OSError("semaphores unavailable")
            yield  # pragma: no cover - marks this as a generator

        monkeypatch.setattr(ReaderFleet, "_iter_multiprocess", boom)
        fleet = _fleet(2, _plain_cfg(), executor="process")
        want = _fleet(2, _plain_cfg(), executor="inprocess").run(table, "p")
        got = fleet.run(table, "p")
        assert_batches_identical(got, want)
        assert fleet.report.executor_used == "inprocess-fallback"
        assert (
            fleet.report.fallback_reason
            == "OSError('semaphores unavailable')"
        )

    def test_clean_runs_record_no_reason(self, landed_table):
        table, _ = landed_table(seed=17, stripe_rows=64)
        fleet = _fleet(2, _plain_cfg(), executor="async")
        fleet.run(table, "p")
        assert fleet.report.fallback_reason == ""
        assert "fallback_reason" in fleet.report.as_dict()
