"""Property wall for wide fleets and tiers under the async executor.

Hypothesis drives random pool widths up to 64 — the scale the async
coroutine executor makes tier-1-affordable — and checks the contracts
that must survive any width:

* every scheduling round's worker allocation sums to the pool width;
* no admitted job is starved more than one consecutive round;
* every fleet's :class:`~repro.metrics.QueueWaitBreakdown` fractions
  are in ``[0, 1]`` and sum to 1 (or are all zero on an idle queue);
* the async batch stream stays bit-identical to the serial reader at
  any width.
"""

from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reader import (
    DataLoaderConfig,
    ReaderFleet,
    ReaderNode,
    SharedReaderTier,
    TierJob,
    allocate_workers,
)
from tests.conftest import land_samples, make_reader_schema, make_trace

from .test_fleet import assert_batches_identical

MAX_WIDTH = 64


def _dl_config(batch_size: int = 8) -> DataLoaderConfig:
    return DataLoaderConfig(
        batch_size=batch_size,
        sparse_features=("hist", "item"),
        dense_features=("d",),
        transforms=("hash_modulo",),
    )


@lru_cache(maxsize=None)
def _landed(sessions: int = 60):
    """One shared landed table — scans are read-only, so every
    hypothesis example can reuse it."""
    schema = make_reader_schema()
    samples = make_trace(schema, sessions=sessions, seed=7)
    return land_samples(schema, samples, stripe_rows=64)


@lru_cache(maxsize=None)
def _serial_reference(batch_size: int = 8):
    """The serial batch stream every wide async fleet must reproduce."""
    table = _landed()
    return tuple(
        ReaderNode(_dl_config(batch_size)).run_all(table.open_readers("p"))
    )


#: a wide width plus a schedulable job set for it
_wide_width_and_jobs = st.integers(1, MAX_WIDTH).flatmap(
    lambda width: st.tuples(
        st.just(width),
        st.lists(
            st.sampled_from([f"j{i}" for i in range(2 * MAX_WIDTH)]),
            min_size=1,
            max_size=min(2 * width, 2 * MAX_WIDTH),
            unique=True,
        ),
    )
)


class TestWideAllocation:
    """allocate_workers keeps its contract all the way to width 64."""

    @settings(max_examples=150, deadline=None)
    @given(
        _wide_width_and_jobs,
        st.integers(0, 200),
        st.sampled_from(["round_robin", "stall_weighted"]),
        st.dictionaries(
            st.sampled_from([f"j{i}" for i in range(2 * MAX_WIDTH)]),
            st.floats(0.0, 1000.0),
        ),
    )
    def test_sums_to_width(self, width_jobs, cursor, policy, demand):
        width, jobs = width_jobs
        alloc = allocate_workers(
            width, jobs, demand=demand, policy=policy, cursor=cursor
        )
        assert set(alloc) == set(jobs)
        assert sum(alloc.values()) == width
        assert all(w >= 0 for w in alloc.values())

    @settings(max_examples=100, deadline=None)
    @given(
        _wide_width_and_jobs,
        st.dictionaries(
            st.sampled_from([f"j{i}" for i in range(2 * MAX_WIDTH)]),
            st.floats(0.0, 1000.0),
        ),
        st.integers(2, 8),
    )
    def test_never_starves_twice(self, width_jobs, demand, rounds):
        width, jobs = width_jobs
        starved: set[str] = set()
        for cursor in range(rounds):
            alloc = allocate_workers(
                width, jobs, starved=starved, demand=demand, cursor=cursor
            )
            now_starved = {n for n, w in alloc.items() if w == 0}
            assert not (starved & now_starved)
            starved = now_starved


class TestWideAsyncFleet:
    """Random widths up to 64 through the async executor."""

    @settings(max_examples=12, deadline=None)
    @given(
        width=st.integers(1, MAX_WIDTH),
        transport=st.sampled_from(["copy", "shm"]),
    )
    def test_bit_identical_with_sane_queue_fractions(
        self, width, transport
    ):
        table = _landed()
        fleet = ReaderFleet(
            width, _dl_config(), executor="async", transport=transport
        )
        got = fleet.run(table, "p")
        assert_batches_identical(got, list(_serial_reference()))
        fractions = fleet.report.queue.fractions()
        assert set(fractions) == {"put_wait", "get_wait", "transport"}
        assert all(0.0 <= f <= 1.0 for f in fractions.values())
        total = sum(fractions.values())
        assert abs(total - 1.0) < 1e-9 or total == 0.0
        # shards never exceed the planned batch count, and every worker
        # filed a report
        assert len(fleet.report.workers) == fleet.report.num_shards
        assert fleet.report.num_shards <= len(_serial_reference())


class TestWideTier:
    """End-to-end shared tiers at random wide widths, async executor."""

    def _tier(self, width: int, num_jobs: int) -> SharedReaderTier:
        tier = SharedReaderTier(width)
        table = _landed()
        for i in range(num_jobs):
            tier.register(
                TierJob(
                    f"job{i}",
                    table,
                    _dl_config(batch_size=16),
                    epochs=[["p"], ["p"]],
                    max_batches=2,
                    executor="async",
                )
            )
        return tier

    @settings(max_examples=8, deadline=None)
    @given(
        width=st.integers(1, MAX_WIDTH),
        num_jobs=st.integers(1, 6),
    )
    def test_wide_tier_invariants(self, width, num_jobs):
        # admission itself refuses job sets the fairness bound cannot
        # cover, so clamp to schedulable sets
        num_jobs = min(num_jobs, 2 * width)
        tier = self._tier(width, num_jobs)
        report = tier.run()
        for rnd in report.rounds:
            assert sum(rnd.allocation.values()) == rnd.width
        for name in report.jobs:
            assert report.max_consecutive_skips(name) <= 1
            assert len(report.job_rounds(name)) == 2  # full epoch plan
        for name, fleet_report in tier.job_fleets.items():
            fractions = fleet_report.queue.fractions()
            assert all(0.0 <= f <= 1.0 for f in fractions.values())
            total = sum(fractions.values())
            assert abs(total - 1.0) < 1e-9 or total == 0.0
