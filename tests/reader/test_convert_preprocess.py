"""Tests for feature conversion (O3) and preprocessing (O4)."""

import numpy as np
import pytest

from repro.core import JaggedTensor
from repro.datagen import (
    DatasetSchema,
    DenseFeatureSpec,
    SparseFeatureSpec,
    TraceConfig,
    generate_partition,
)
from repro.reader import (
    ClampValues,
    DataLoaderConfig,
    HashModulo,
    TruncateLength,
    apply_transforms,
    convert_rows,
)


def _schema():
    return DatasetSchema(
        sparse=(
            SparseFeatureSpec("u", avg_length=8, change_prob=0.05),
            SparseFeatureSpec("v", avg_length=8, change_prob=0.05, group="g"),
            SparseFeatureSpec("w", avg_length=4, change_prob=0.05, group="g"),
        ),
        dense=(DenseFeatureSpec("d0"), DenseFeatureSpec("d1")),
    )


def _rows(n=32, seed=0):
    return generate_partition(_schema(), 4, TraceConfig(seed=seed))[:n]


class TestConvert:
    def test_plain_conversion(self):
        cfg = DataLoaderConfig(
            batch_size=8,
            sparse_features=("u", "v", "w"),
            dense_features=("d0", "d1"),
        )
        rows = _rows(8)
        batch, stats = convert_rows(rows, cfg)
        assert batch.batch_size == 8
        assert batch.kjt is not None and batch.ikjts == []
        assert batch.dense.shape == (8, 2)
        assert stats.values_copied == batch.kjt.total_values
        assert stats.values_hashed == 0

    def test_dedup_conversion(self):
        cfg = DataLoaderConfig(
            batch_size=8,
            sparse_features=("u",),
            dedup_sparse_features=(("v", "w"),),
        )
        rows = _rows(8)
        batch, stats = convert_rows(rows, cfg)
        assert len(batch.ikjts) == 1
        ikjt = batch.ikjts[0]
        assert ikjt.keys == ["v", "w"]
        # all group values hashed, only unique copied
        total_group = sum(
            len(r.sparse["v"]) + len(r.sparse["w"]) for r in rows
        )
        assert stats.values_hashed == total_group
        assert stats.values_copied < stats.values_hashed + batch.kjt.total_values

    def test_conversion_lossless(self):
        cfg = DataLoaderConfig(
            batch_size=16,
            dedup_sparse_features=(("u",), ("v", "w")),
        )
        rows = _rows(16)
        batch, _ = convert_rows(rows, cfg)
        expanded = batch.to_kjt_only()
        for i, r in enumerate(rows):
            for key in ("u", "v", "w"):
                np.testing.assert_array_equal(
                    expanded.kjt[key].row(i), r.sparse[key]
                )

    def test_labels_and_dense(self):
        cfg = DataLoaderConfig(
            batch_size=4, sparse_features=("u",), dense_features=("d1",)
        )
        rows = _rows(4)
        batch, _ = convert_rows(rows, cfg)
        np.testing.assert_array_equal(
            batch.labels, [float(r.label) for r in rows]
        )
        np.testing.assert_allclose(
            batch.dense[:, 0],
            [np.float32(r.dense["d1"]) for r in rows],
        )

    def test_empty_rows_rejected(self):
        cfg = DataLoaderConfig(batch_size=4, sparse_features=("u",))
        with pytest.raises(ValueError):
            convert_rows([], cfg)


class TestTransforms:
    def test_hash_modulo_bounds(self):
        t = HashModulo(modulus=1000)
        jt = JaggedTensor.from_lists([[123456789, 5], [99]])
        out = t.apply(jt)
        assert out.values.min() >= 0
        assert out.values.max() < 1000
        np.testing.assert_array_equal(out.offsets, jt.offsets)

    def test_hash_modulo_validation(self):
        with pytest.raises(ValueError):
            HashModulo(modulus=0)

    def test_clamp(self):
        t = ClampValues(max_id=10)
        out = t.apply(JaggedTensor.from_lists([[-5, 3, 99]]))
        np.testing.assert_array_equal(out.values, [0, 3, 10])

    def test_truncate_keeps_suffix(self):
        t = TruncateLength(max_len=2)
        out = t.apply(JaggedTensor.from_lists([[1, 2, 3, 4], [5]]))
        assert out.to_lists() == [[3, 4], [5]]

    def test_truncate_zero(self):
        t = TruncateLength(max_len=0)
        out = t.apply(JaggedTensor.from_lists([[1, 2], [3]]))
        assert out.to_lists() == [[], []]

    def test_truncate_validation(self):
        with pytest.raises(ValueError):
            TruncateLength(max_len=-1)


class TestApplyTransforms:
    def _batch(self, dedup: bool):
        if dedup:
            cfg = DataLoaderConfig(
                batch_size=16,
                dedup_sparse_features=(("u",), ("v", "w")),
                transforms=("hash_modulo",),
            )
        else:
            cfg = DataLoaderConfig(
                batch_size=16,
                sparse_features=("u", "v", "w"),
                transforms=("hash_modulo",),
            )
        rows = _rows(16)
        batch, _ = convert_rows(rows, cfg)
        return batch, cfg

    def test_equivalence_dedup_vs_plain(self):
        """O4's wrapper must preserve functional semantics: transforming
        dedup slices then expanding equals transforming the full KJT."""
        plain_batch, plain_cfg = self._batch(dedup=False)
        dedup_batch, dedup_cfg = self._batch(dedup=True)
        plain_out, _ = apply_transforms(plain_batch, plain_cfg.transforms)
        dedup_out, _ = apply_transforms(dedup_batch, dedup_cfg.transforms)
        expanded = dedup_out.to_kjt_only()
        for key in ("u", "v", "w"):
            assert expanded.kjt[key] == plain_out.kjt[key]

    def test_dedup_processes_fewer_values(self):
        """O4's efficiency claim: IKJT preprocessing touches fewer values."""
        plain_batch, plain_cfg = self._batch(dedup=False)
        dedup_batch, dedup_cfg = self._batch(dedup=True)
        _, plain_stats = apply_transforms(plain_batch, plain_cfg.transforms)
        _, dedup_stats = apply_transforms(dedup_batch, dedup_cfg.transforms)
        assert dedup_stats.values_processed < plain_stats.values_processed

    def test_unknown_transform(self):
        batch, _ = self._batch(dedup=False)
        with pytest.raises(KeyError):
            apply_transforms(batch, ("nope",))

    def test_no_transforms_identity(self):
        batch, _ = self._batch(dedup=True)
        out, stats = apply_transforms(batch, ())
        assert stats.values_processed == 0
        assert out.ikjts == batch.ikjts
