"""Tests for the sharded reader fleet: shard planning round-trips,
bit-identical output versus the serial reader, report merging, and the
prefetch-queue accounting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import QueueWaitBreakdown, ReaderCpuBreakdown
from repro.reader import (
    DataLoaderConfig,
    FleetReport,
    ReaderFleet,
    ReaderNode,
    ReaderReport,
    RowRangeShard,
    covering_files,
    plan_shards,
)


def _plain_cfg(batch_size=48):
    return DataLoaderConfig(
        batch_size=batch_size,
        sparse_features=("hist", "item"),
        dense_features=("d",),
        transforms=("hash_modulo",),
    )


def _dedup_cfg(batch_size=48):
    return DataLoaderConfig(
        batch_size=batch_size,
        sparse_features=("item",),
        dedup_sparse_features=(("hist",),),
        dense_features=("d",),
        transforms=("hash_modulo",),
    )


def assert_batches_identical(got, want):
    """Bit-level batch equality: every tensor component must match."""
    assert len(got) == len(want)
    for a, b in zip(got, want):
        np.testing.assert_array_equal(a.dense, b.dense)
        np.testing.assert_array_equal(a.labels, b.labels)
        assert (a.kjt is None) == (b.kjt is None)
        if a.kjt is not None:
            assert a.kjt == b.kjt
        assert a.ikjts == b.ikjts
        assert (a.partial is None) == (b.partial is None)
        if a.partial is not None:
            assert a.partial.to_kjt() == b.partial.to_kjt()


# -- shard planning ----------------------------------------------------------


class TestPlanShards:
    @given(
        num_rows=st.integers(min_value=0, max_value=5000),
        batch_size=st.integers(min_value=1, max_value=128),
        num_shards=st.integers(min_value=1, max_value=16),
    )
    def test_property_round_trip(self, num_rows, batch_size, num_shards):
        """Shards are ordered, contiguous, disjoint, cover every row, and
        interior boundaries stay batch-aligned."""
        shards = plan_shards(num_rows, batch_size, num_shards)
        assert [s.index for s in shards] == list(range(len(shards)))
        pos = 0
        for s in shards:
            assert s.row_start == pos  # contiguous => disjoint + ordered
            assert s.row_stop >= s.row_start
            pos = s.row_stop
        assert pos == num_rows  # full coverage
        for s in shards[:-1]:
            assert s.num_rows % batch_size == 0
        # no full batch is lost or invented by the split
        assert (
            sum(s.num_rows // batch_size for s in shards)
            == num_rows // batch_size
        )
        assert len(shards) <= num_shards

    @given(
        num_rows=st.integers(min_value=0, max_value=5000),
        batch_size=st.integers(min_value=1, max_value=128),
        num_shards=st.integers(min_value=1, max_value=16),
        max_batches=st.integers(min_value=0, max_value=40),
    )
    def test_property_max_batches_cap(
        self, num_rows, batch_size, num_shards, max_batches
    ):
        shards = plan_shards(
            num_rows, batch_size, num_shards, max_batches=max_batches
        )
        planned = sum(s.num_rows // batch_size for s in shards)
        assert planned == min(max_batches, num_rows // batch_size)

    def test_tail_rides_in_last_shard(self):
        shards = plan_shards(250, 32, 3)
        # 7 full batches, tail of 26 rows on the last shard
        assert shards[-1].row_stop == 250
        assert shards[0].num_rows % 32 == 0

    def test_no_full_batch_single_shard(self):
        shards = plan_shards(10, 32, 4)
        assert shards == [RowRangeShard(0, 0, 10)]

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 32, 2)
        with pytest.raises(ValueError):
            plan_shards(100, 0, 2)
        with pytest.raises(ValueError):
            plan_shards(100, 32, 0)
        with pytest.raises(ValueError):
            plan_shards(100, 32, 2, max_batches=-1)
        with pytest.raises(ValueError):
            RowRangeShard(0, 5, 4)


class TestCoveringFiles:
    def test_window_maps_to_files(self):
        counts = [100, 100, 100]
        assert covering_files(counts, 0, 100) == ([0], 0)
        assert covering_files(counts, 50, 150) == ([0, 1], 0)
        assert covering_files(counts, 100, 300) == ([1, 2], 100)
        assert covering_files(counts, 250, 260) == ([2], 200)

    def test_empty_window(self):
        assert covering_files([100, 100], 50, 50) == ([], 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            covering_files([10], 5, 4)
        with pytest.raises(ValueError):
            covering_files([-1], 0, 1)

    @given(
        counts=st.lists(
            st.integers(min_value=0, max_value=200), min_size=1, max_size=8
        ),
        data=st.data(),
    )
    def test_property_covers_window(self, counts, data):
        total = sum(counts)
        start = data.draw(st.integers(min_value=0, max_value=total))
        stop = data.draw(st.integers(min_value=start, max_value=total))
        idxs, base = covering_files(counts, start, stop)
        # every row of the window falls inside the returned files
        if start < stop:
            assert idxs
            covered_stop = base + sum(counts[i] for i in range(idxs[0], idxs[-1] + 1))
            assert base <= start and covered_stop >= stop


# -- fleet output determinism ------------------------------------------------


class TestFleetDeterminism:
    def _serial(self, table, cfg, max_batches=None):
        return ReaderNode(cfg).run_all(
            table.open_readers("p"), max_batches=max_batches
        )

    @pytest.mark.parametrize("num_readers", [1, 2, 4])
    def test_inprocess_matches_serial(self, landed_table, num_readers):
        table, _ = landed_table(seed=1, stripe_rows=64)
        cfg = _plain_cfg()
        serial = self._serial(table, cfg)
        fleet = ReaderFleet(num_readers, cfg, executor="inprocess")
        got = fleet.run(table, "p")
        assert serial  # the table must be big enough to mean something
        assert_batches_identical(got, serial)
        assert fleet.report.executor_used == "inprocess"

    @pytest.mark.parametrize("num_readers", [2, 4])
    def test_multiprocess_matches_serial(self, landed_table, num_readers):
        table, _ = landed_table(seed=2, stripe_rows=64)
        cfg = _plain_cfg()
        serial = self._serial(table, cfg)
        fleet = ReaderFleet(num_readers, cfg, executor="process")
        got = fleet.run(table, "p")
        assert_batches_identical(got, serial)
        # a locked-down platform may degrade, but never at the cost of
        # output fidelity
        assert fleet.report.executor_used in ("process", "inprocess-fallback")

    def test_dedup_config_matches_serial(self, landed_table):
        table, _ = landed_table(clustered=True, seed=3, stripe_rows=64)
        cfg = _dedup_cfg()
        serial = self._serial(table, cfg)
        fleet = ReaderFleet(3, cfg, executor="inprocess")
        got = fleet.run(table, "p")
        assert serial and all(b.ikjts for b in serial)
        assert_batches_identical(got, serial)

    def test_max_batches_matches_serial_prefix(self, landed_table):
        table, _ = landed_table(seed=4, stripe_rows=64)
        cfg = _plain_cfg()
        serial = self._serial(table, cfg)
        fleet = ReaderFleet(4, cfg, executor="inprocess")
        got = fleet.run(table, "p", max_batches=3)
        assert_batches_identical(got, serial[:3])

    def test_max_batches_zero_yields_nothing(self, landed_table):
        """The serial reader and the fleet must agree on a zero cap."""
        table, _ = landed_table(seed=4, stripe_rows=64)
        cfg = _plain_cfg()
        assert self._serial(table, cfg, max_batches=0) == []
        fleet = ReaderFleet(2, cfg, executor="inprocess")
        assert fleet.run(table, "p", max_batches=0) == []

    def test_partition_smaller_than_batch(self, landed_table):
        table, samples = landed_table(seed=5, sessions=2)
        cfg = _plain_cfg(batch_size=len(samples) + 10)
        fleet = ReaderFleet(2, cfg, executor="inprocess")
        assert fleet.run(table, "p") == []
        assert fleet.report.merged.batches == 0

    def test_validation(self):
        """Bad widths fail at construction with a clear message — never
        deep inside shard planning."""
        with pytest.raises(ValueError, match="num_readers.*got 0"):
            ReaderFleet(0, _plain_cfg())
        with pytest.raises(ValueError, match="num_readers.*got -3"):
            ReaderFleet(-3, _plain_cfg())
        with pytest.raises(ValueError):
            ReaderFleet(2, _plain_cfg(), prefetch_depth=0)
        with pytest.raises(ValueError):
            ReaderFleet(2, _plain_cfg(), executor="threads")

    def test_balanced_wall_seconds(self):
        rep = FleetReport()
        rep.workers.append(ReaderReport(cpu=ReaderCpuBreakdown(fill=4.0)))
        assert rep.balanced_wall_seconds(4) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            rep.balanced_wall_seconds(0)


# -- report merging ----------------------------------------------------------


def _report(fill, convert, process, samples, batches, read_b, send_b):
    return ReaderReport(
        cpu=ReaderCpuBreakdown(fill=fill, convert=convert, process=process),
        samples=samples,
        batches=batches,
        read_bytes=read_b,
        send_bytes=send_b,
    )


class TestReportMerging:
    def test_reader_report_merge_arithmetic(self):
        a = _report(1.0, 2.0, 3.0, 100, 2, 10_000, 5_000)
        b = _report(0.5, 0.25, 0.75, 60, 1, 4_000, 2_500)
        a.merge(b)
        assert a.cpu.fill == pytest.approx(1.5)
        assert a.cpu.convert == pytest.approx(2.25)
        assert a.cpu.process == pytest.approx(3.75)
        assert a.samples == 160
        assert a.batches == 3
        assert a.read_bytes == 14_000
        assert a.send_bytes == 7_500
        assert a.samples_per_cpu_second == pytest.approx(160 / 7.5)

    def test_fleet_report_merged_and_modeled_wall(self):
        rep = FleetReport(
            workers=[
                _report(1.0, 0.0, 0.0, 100, 2, 1, 1),
                _report(3.0, 0.0, 0.0, 200, 4, 2, 2),
            ]
        )
        merged = rep.merged
        assert merged.samples == 300
        assert merged.batches == 6
        assert merged.cpu.total == pytest.approx(4.0)
        # the fleet finishes with its straggler (3.0s), not the sum
        assert rep.modeled_wall_seconds == pytest.approx(3.0)
        assert rep.modeled_samples_per_second == pytest.approx(300 / 3.0)

    def test_empty_fleet_report(self):
        rep = FleetReport()
        assert rep.merged.samples == 0
        assert rep.modeled_wall_seconds == 0.0
        assert rep.modeled_samples_per_second == 0.0

    def test_queue_wait_breakdown(self):
        q = QueueWaitBreakdown(put_wait=0.5, get_wait=1.5)
        assert q.total == pytest.approx(2.0)
        q.merge(QueueWaitBreakdown(put_wait=0.25, get_wait=0.75))
        assert q.put_wait == pytest.approx(0.75)
        assert q.get_wait == pytest.approx(2.25)

    def test_run_populates_worker_reports(self, landed_table):
        table, samples = landed_table(seed=6, stripe_rows=64)
        cfg = _plain_cfg()
        fleet = ReaderFleet(3, cfg, executor="inprocess")
        batches = fleet.run(table, "p")
        rep = fleet.report
        assert len(rep.workers) == rep.num_shards > 1
        merged = rep.merged
        assert merged.batches == len(batches)
        assert merged.samples == sum(b.batch_size for b in batches)
        assert merged.samples == cfg.batch_size * len(batches)
        # sharding parallelism: the modeled fleet latency beats one node
        assert rep.modeled_wall_seconds < merged.cpu.total
        assert rep.wall_seconds > 0.0
