"""Tests for multi-partition epochs: the cross-partition shard plan and
the fleet's epoch iterator being bit-identical to serial per-partition
scans at every fleet width."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reader import (
    DataLoaderConfig,
    ReaderFleet,
    ReaderNode,
    plan_epoch,
)
from tests.conftest import land_samples, make_reader_schema, make_trace
from tests.reader.test_fleet import assert_batches_identical


def _plain_cfg(batch_size=48):
    return DataLoaderConfig(
        batch_size=batch_size,
        sparse_features=("hist", "item"),
        dense_features=("d",),
        transforms=("hash_modulo",),
    )


def _landed_multi(num_partitions=3, sessions=90, seed=0):
    """One table with ``num_partitions`` contiguous chunks of a trace."""
    schema = make_reader_schema()
    samples = make_trace(schema, sessions=sessions, seed=seed)
    table = land_samples(schema, samples[: len(samples) // num_partitions])
    # land_samples lands partition "p"; rename flow: land the rest here
    names = ["p"]
    chunk = len(samples) // num_partitions
    for i in range(1, num_partitions):
        lo = i * chunk
        hi = len(samples) if i == num_partitions - 1 else (i + 1) * chunk
        table.land_partition(f"p{i}", samples[lo:hi])
        names.append(f"p{i}")
    return table, names


# -- plan_epoch --------------------------------------------------------------


class TestPlanEpoch:
    @given(
        rows=st.lists(
            st.integers(min_value=0, max_value=2000), min_size=1, max_size=5
        ),
        batch_size=st.integers(min_value=1, max_value=128),
        num_shards=st.integers(min_value=1, max_value=8),
    )
    def test_property_per_partition_coverage(
        self, rows, batch_size, num_shards
    ):
        """Every partition is fully covered by its own contiguous shards,
        and shard indices increase globally across the epoch."""
        parts = [(f"p{i}", n) for i, n in enumerate(rows)]
        plan = plan_epoch(parts, batch_size, num_shards)
        assert [name for name, _ in plan] == [name for name, _ in parts]
        next_index = 0
        for (_, shards), (_, num_rows) in zip(plan, parts):
            if num_rows < batch_size:
                # sub-batch partitions spawn no scan-and-drop workers
                assert shards == []
                continue
            pos = 0
            for s in shards:
                assert s.index == next_index
                next_index += 1
                assert s.row_start == pos
                pos = s.row_stop
            assert pos == num_rows  # full coverage of the partition
            assert len(shards) <= num_shards

    @given(
        rows=st.lists(
            st.integers(min_value=0, max_value=2000), min_size=1, max_size=5
        ),
        batch_size=st.integers(min_value=1, max_value=128),
        num_shards=st.integers(min_value=1, max_value=8),
        max_batches=st.integers(min_value=0, max_value=30),
    )
    def test_property_epoch_budget(
        self, rows, batch_size, num_shards, max_batches
    ):
        """The max_batches budget is global and spent in partition order."""
        parts = [(f"p{i}", n) for i, n in enumerate(rows)]
        plan = plan_epoch(parts, batch_size, num_shards, max_batches)
        total_available = sum(n // batch_size for n in rows)
        planned = sum(
            s.num_rows // batch_size for _, shards in plan for s in shards
        )
        assert planned == min(max_batches, total_available)
        # partition order: once a later partition plans a batch, every
        # earlier partition's full batches must already be planned
        seen_short = False
        for (_, shards), (_, num_rows) in zip(plan, parts):
            got = sum(s.num_rows // batch_size for s in shards)
            if seen_short:
                assert got == 0
            if got < num_rows // batch_size:
                seen_short = True

    def test_single_partition_matches_plan_shards(self):
        from repro.reader import plan_shards

        assert plan_epoch([("p0", 250)], 32, 3) == [
            ("p0", plan_shards(250, 32, 3))
        ]

    def test_exhausted_budget_skips_small_partitions(self):
        # 2 batches in p0 exhaust the budget; p1 (sub-batch) must not
        # plan even a zero-batch scan shard
        plan = plan_epoch([("p0", 64), ("p1", 10)], 32, 2, max_batches=2)
        assert plan[0][1][-1].row_stop == 64
        assert plan[1] == ("p1", [])

    def test_sub_batch_partition_contributes_no_shards(self):
        """An undersized partition mid-epoch plans no worker at all; the
        partitions around it shard normally with contiguous indices."""
        plan = plan_epoch([("p0", 64), ("tiny", 10), ("p2", 96)], 32, 2)
        assert plan[1] == ("tiny", [])
        indices = [s.index for _, shards in plan for s in shards]
        assert indices == list(range(len(indices)))
        assert plan[2][1][0].row_start == 0  # p2 still covered from row 0
        assert plan[2][1][-1].row_stop == 96


# -- fleet epoch determinism -------------------------------------------------


class TestIterEpochDeterminism:
    def _serial_epoch(self, table, cfg, names, max_batches=None):
        """Scan each partition serially, in order — the reference."""
        out = []
        for name in names:
            node = ReaderNode(cfg)
            remaining = (
                None if max_batches is None else max_batches - len(out)
            )
            if remaining is not None and remaining <= 0:
                break
            out.extend(
                node.run_all(table.open_readers(name), max_batches=remaining)
            )
        return out

    @pytest.mark.parametrize("num_readers", [1, 2, 4])
    def test_inprocess_matches_serial(self, num_readers):
        table, names = _landed_multi(seed=7)
        cfg = _plain_cfg()
        serial = self._serial_epoch(table, cfg, names)
        fleet = ReaderFleet(num_readers, cfg, executor="inprocess")
        got = fleet.run_epoch(table, names)
        assert len(serial) > len(names)  # multiple batches per partition
        assert_batches_identical(got, serial)

    @pytest.mark.parametrize("num_readers", [2, 4])
    def test_multiprocess_matches_serial(self, num_readers):
        table, names = _landed_multi(seed=8)
        cfg = _plain_cfg()
        serial = self._serial_epoch(table, cfg, names)
        fleet = ReaderFleet(num_readers, cfg, executor="process")
        got = fleet.run_epoch(table, names)
        assert_batches_identical(got, serial)
        assert fleet.report.executor_used in ("process", "inprocess-fallback")

    def test_epoch_budget_matches_serial_prefix(self):
        table, names = _landed_multi(seed=9)
        cfg = _plain_cfg()
        serial = self._serial_epoch(table, cfg, names)
        fleet = ReaderFleet(3, cfg, executor="inprocess")
        cap = len(serial) - 1  # forces the cap to land mid-epoch
        got = fleet.run_epoch(table, names, max_batches=cap)
        assert_batches_identical(got, serial[:cap])

    def test_single_partition_epoch_equals_iter_batches(self):
        table, names = _landed_multi(num_partitions=1, seed=10)
        cfg = _plain_cfg()
        fleet = ReaderFleet(2, cfg, executor="inprocess")
        via_epoch = fleet.run_epoch(table, names)
        fleet2 = ReaderFleet(2, cfg, executor="inprocess")
        via_partition = fleet2.run(table, names[0])
        assert_batches_identical(via_epoch, via_partition)

    def test_report_spans_partitions(self):
        table, names = _landed_multi(seed=11)
        cfg = _plain_cfg()
        fleet = ReaderFleet(2, cfg, executor="inprocess")
        batches = fleet.run_epoch(table, names)
        rep = fleet.report
        assert rep.merged.batches == len(batches)
        assert rep.num_shards == len(rep.workers)
        assert rep.wall_seconds > 0.0


class TestNonLivePartitionErrors:
    """A dead epoch plan must name each offending partition, say *why*
    it is not live, and show the current live window."""

    def test_never_landed_partition_is_named(self):
        table, names = _landed_multi(seed=12)
        fleet = ReaderFleet(2, _plain_cfg(), executor="inprocess")
        with pytest.raises(KeyError) as err:
            list(fleet.iter_epoch(table, [*names, "p99"]))
        message = str(err.value)
        assert "'p99' (never landed)" in message
        assert f"current live window: {names}" in message

    def test_retention_dropped_partition_is_distinguished(self):
        table, names = _landed_multi(seed=13)
        table.drop_partition(names[0])
        fleet = ReaderFleet(2, _plain_cfg(), executor="inprocess")
        with pytest.raises(KeyError) as err:
            list(fleet.iter_epoch(table, names))
        message = str(err.value)
        assert f"{names[0]!r} (dropped by retention)" in message
        assert f"current live window: {names[1:]}" in message
