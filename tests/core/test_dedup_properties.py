"""Property wall for the dedup hot path (Hypothesis).

The streaming pipeline ships deduplicated IKJT batches and expands them
only after the pooled embedding lookup, so the whole bit-identity story
rests on three algebraic contracts of :mod:`repro.core.dedup` and
:class:`~repro.core.InverseKeyedJaggedTensor`:

* **inverse round-trip** — ``rows[unique][inverse] == rows`` for any
  batch, single-feature or grouped;
* **idempotence** — deduplicating an already-unique batch is the
  identity (``unique == arange``, ``inverse == arange``);
* **collapse→expand identity** — ``from_kjt(kjt, keys).to_kjt()``
  restores the duplicate-bearing KJT bit-for-bit, and the analytic
  ``expanded_nbytes`` equals what the restored KJT actually carries.

The edge-case unit tests at the bottom pin the exact error messages and
empty/single-row behaviour of the characterization helpers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    InverseKeyedJaggedTensor,
    JaggedTensor,
    KeyedJaggedTensor,
    dedup_grouped_rows,
    dedup_rows,
    exact_duplicate_fraction,
    measured_dedupe_factor,
    partial_duplicate_fraction,
)

# A row drawn from a tiny alphabet of short lists, so generated batches
# actually contain duplicates (the interesting regime) while still
# exercising empty rows and empty batches.
_row = st.lists(st.integers(min_value=0, max_value=5), max_size=4)
_batch = st.lists(_row, max_size=12)


def _gather(jt: JaggedTensor, indices: np.ndarray) -> list[list]:
    return [jt.row(int(i)).tolist() for i in indices]


class TestInverseRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(rows=_batch)
    def test_single_feature_gather_restores_rows(self, rows):
        jt = JaggedTensor.from_lists(rows)
        unique, inverse = dedup_rows(jt)
        assert inverse.shape == (jt.num_rows,)
        assert _gather(jt, unique[inverse]) == jt.to_lists()

    @settings(max_examples=60, deadline=None)
    @given(rows_a=_batch, seed=st.integers(min_value=0, max_value=2**16))
    def test_grouped_gather_restores_every_member(self, rows_a, seed):
        rng = np.random.default_rng(seed)
        rows_b = [
            [int(v) for v in rng.integers(0, 3, size=len(r) % 3)]
            for r in rows_a
        ]
        group = [
            JaggedTensor.from_lists(rows_a),
            JaggedTensor.from_lists(rows_b),
        ]
        unique, inverse = dedup_grouped_rows(group)
        for jt in group:
            assert _gather(jt, unique[inverse]) == jt.to_lists()

    @settings(max_examples=60, deadline=None)
    @given(rows=_batch)
    def test_unique_indices_are_first_occurrences(self, rows):
        jt = JaggedTensor.from_lists(rows)
        unique, inverse = dedup_rows(jt)
        # first-appearance order: strictly increasing, and each unique
        # row's first reference in inverse is at the row itself.
        assert np.all(np.diff(unique) > 0) if unique.size > 1 else True
        for pos, row_idx in enumerate(unique):
            assert inverse[row_idx] == pos


class TestIdempotence:
    @settings(max_examples=60, deadline=None)
    @given(rows=_batch)
    def test_dedup_of_deduped_batch_is_identity(self, rows):
        jt = JaggedTensor.from_lists(rows)
        unique, _ = dedup_rows(jt)
        deduped = JaggedTensor.from_lists(_gather(jt, unique))
        unique2, inverse2 = dedup_rows(deduped)
        np.testing.assert_array_equal(unique2, np.arange(deduped.num_rows))
        np.testing.assert_array_equal(inverse2, np.arange(deduped.num_rows))
        assert measured_dedupe_factor(deduped) == 1.0

    def test_all_unique_batch_identity(self):
        jt = JaggedTensor.from_lists([[1], [2], [3]])
        unique, inverse = dedup_rows(jt)
        np.testing.assert_array_equal(unique, [0, 1, 2])
        np.testing.assert_array_equal(inverse, [0, 1, 2])
        assert measured_dedupe_factor(jt) == 1.0


class TestCollapseExpand:
    @settings(max_examples=60, deadline=None)
    @given(rows=_batch, seed=st.integers(min_value=0, max_value=2**16))
    def test_from_kjt_to_kjt_is_identity(self, rows, seed):
        rng = np.random.default_rng(seed)
        kjt = KeyedJaggedTensor(
            {
                "hist": JaggedTensor.from_lists(rows),
                "item": JaggedTensor.from_lists(
                    [
                        [int(v) for v in rng.integers(0, 4, size=2)]
                        for _ in rows
                    ]
                ),
            }
        )
        ikjt = InverseKeyedJaggedTensor.from_kjt(kjt)
        restored = ikjt.to_kjt()
        assert restored == kjt

    @settings(max_examples=60, deadline=None)
    @given(rows=_batch)
    def test_expanded_nbytes_matches_restored_kjt(self, rows):
        kjt = KeyedJaggedTensor({"hist": JaggedTensor.from_lists(rows)})
        ikjt = InverseKeyedJaggedTensor.from_kjt(kjt)
        restored = ikjt.to_kjt()
        actual = sum(jt.nbytes for _, jt in restored.items())
        assert ikjt.expanded_nbytes == actual
        # Dedup never grows the wire payload.
        assert ikjt.wire_nbytes <= ikjt.expanded_nbytes

    @settings(max_examples=60, deadline=None)
    @given(rows=_batch)
    def test_dedupe_factor_matches_measured(self, rows):
        jt = JaggedTensor.from_lists(rows)
        kjt = KeyedJaggedTensor({"hist": jt})
        ikjt = InverseKeyedJaggedTensor.from_kjt(kjt)
        assert ikjt.dedupe_factor() == pytest.approx(
            measured_dedupe_factor(jt)
        )


class TestEdgeCases:
    """Exact-message and empty/single-row contracts of the helpers."""

    def test_grouped_rejects_empty_group(self):
        with pytest.raises(
            ValueError, match="need at least one tensor in the group"
        ):
            dedup_grouped_rows([])

    def test_grouped_rejects_mismatched_batch_sizes(self):
        with pytest.raises(
            ValueError, match="group members must share a batch size"
        ):
            dedup_grouped_rows(
                [
                    JaggedTensor.from_lists([[1], [2]]),
                    JaggedTensor.from_lists([[1]]),
                ]
            )

    def test_exact_fraction_rejects_misaligned_inputs(self):
        with pytest.raises(
            ValueError, match="rows and session_ids must align"
        ):
            exact_duplicate_fraction([[1], [2]], [0])

    def test_partial_fraction_rejects_misaligned_inputs(self):
        with pytest.raises(
            ValueError, match="rows and session_ids must align"
        ):
            partial_duplicate_fraction([[1]], [0, 1])

    def test_exact_fraction_empty_inputs(self):
        assert exact_duplicate_fraction([], []) == 0.0

    def test_exact_fraction_accepts_numpy_rows(self):
        # Regression: a numpy ``rows`` array used to trip the ambiguous
        # truth-value check that guarded the empty case.
        rows = np.array([[1, 2], [1, 2], [3, 4]])
        sids = np.array([0, 0, 0])
        assert exact_duplicate_fraction(rows, sids) == pytest.approx(1 / 3)

    def test_exact_fraction_empty_numpy_rows(self):
        assert exact_duplicate_fraction(
            np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64)
        ) == 0.0

    def test_exact_fraction_single_row_is_never_duplicate(self):
        assert exact_duplicate_fraction([[1, 2, 3]], [7]) == 0.0

    def test_partial_fraction_empty_inputs(self):
        assert partial_duplicate_fraction([], []) == 0.0

    def test_partial_fraction_all_empty_rows(self):
        assert partial_duplicate_fraction([[], []], [0, 1]) == 0.0

    def test_partial_fraction_single_row(self):
        # One row, one session: 2 extra copies of "1" in 4 IDs.
        assert partial_duplicate_fraction(
            [[1, 1, 1, 2]], [3]
        ) == pytest.approx(0.5)

    def test_measured_factor_empty_tensor(self):
        assert measured_dedupe_factor(JaggedTensor.empty(0)) == 1.0

    def test_measured_factor_all_empty_rows(self):
        assert measured_dedupe_factor(JaggedTensor.empty(5)) == 1.0

    def test_measured_factor_single_row(self):
        assert measured_dedupe_factor(
            JaggedTensor.from_lists([[1, 2, 3]])
        ) == 1.0

    def test_measured_factor_duplicated_rows(self):
        jt = JaggedTensor.from_lists([[1, 2], [1, 2], [1, 2], [9]])
        # 7 original values, 3 after dedup.
        assert measured_dedupe_factor(jt) == pytest.approx(7 / 3)
