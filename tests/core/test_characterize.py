"""Tests for online feature characterization (d/l estimation)."""

import numpy as np
import pytest

from repro.core import (
    measure_feature_stats,
    measure_samples_per_session,
    select_features_to_dedup,
)
from repro.datagen import (
    DatasetSchema,
    FeatureKind,
    SparseFeatureSpec,
    TraceConfig,
    generate_partition,
)
from repro.datagen.session import Sample


def _sample(sid, ts, **sparse):
    return Sample(
        sample_id=int(ts * 100),
        session_id=sid,
        timestamp=ts,
        label=0,
        sparse={k: np.asarray(v, dtype=np.int64) for k, v in sparse.items()},
    )


class TestMeasureFeatureStats:
    def test_fully_duplicated_feature(self):
        samples = [
            _sample(0, 1.0, f=[1, 2]),
            _sample(0, 2.0, f=[1, 2]),
            _sample(0, 3.0, f=[1, 2]),
        ]
        (stats,) = measure_feature_stats(samples, ["f"])
        assert stats.d == pytest.approx(1.0)
        assert stats.avg_length == pytest.approx(2.0)

    def test_never_duplicated_feature(self):
        samples = [
            _sample(0, 1.0, f=[1]),
            _sample(0, 2.0, f=[2]),
        ]
        (stats,) = measure_feature_stats(samples, ["f"])
        assert stats.d == 0.0

    def test_cross_session_pairs_not_counted(self):
        samples = [
            _sample(0, 1.0, f=[9]),
            _sample(1, 2.0, f=[9]),  # equal values but different sessions
        ]
        (stats,) = measure_feature_stats(samples, ["f"])
        assert stats.d == 0.0  # no adjacent same-session pairs

    def test_timestamp_order_within_session(self):
        # delivered out of order; must sort by timestamp before pairing
        samples = [
            _sample(0, 3.0, f=[2]),
            _sample(0, 1.0, f=[1]),
            _sample(0, 2.0, f=[1]),
        ]
        (stats,) = measure_feature_stats(samples, ["f"])
        assert stats.d == pytest.approx(0.5)

    def test_missing_feature_rows_skipped(self):
        samples = [
            _sample(0, 1.0, f=[1]),
            _sample(0, 2.0),  # feature absent
            _sample(0, 3.0, f=[1]),
        ]
        (stats,) = measure_feature_stats(samples, ["f"])
        assert stats.avg_length == 1.0

    def test_empty_names_rejected(self):
        with pytest.raises(ValueError):
            measure_feature_stats([], [])

    def test_estimates_match_schema_truth(self):
        """On a generated trace, measured d(f)/l(f) recover the specs."""
        schema = DatasetSchema(
            sparse=(
                SparseFeatureSpec(
                    "hot", FeatureKind.USER, avg_length=12, change_prob=0.05
                ),
                SparseFeatureSpec(
                    "cold", FeatureKind.ITEM, avg_length=3, change_prob=0.9
                ),
            )
        )
        samples = generate_partition(schema, 300, TraceConfig(seed=17))
        stats = {
            s.name: s
            for s in measure_feature_stats(samples, ["hot", "cold"])
        }
        assert stats["hot"].d == pytest.approx(0.95, abs=0.03)
        assert stats["hot"].avg_length == pytest.approx(12, abs=0.5)
        assert stats["cold"].d == pytest.approx(0.10, abs=0.05)

    def test_feeds_selection_heuristic(self):
        schema = DatasetSchema(
            sparse=(
                SparseFeatureSpec("hot", avg_length=20, change_prob=0.05),
                SparseFeatureSpec(
                    "cold", FeatureKind.ITEM, avg_length=2, change_prob=0.9
                ),
            )
        )
        samples = generate_partition(schema, 200, TraceConfig(seed=18))
        stats = measure_feature_stats(samples, ["hot", "cold"])
        s = measure_samples_per_session(samples)
        chosen = select_features_to_dedup(stats, batch_size=1024,
                                          samples_per_session=s)
        assert chosen == ["hot"]


class TestSamplesPerSession:
    def test_empty(self):
        assert measure_samples_per_session([]) == 0.0

    def test_basic(self):
        samples = [
            _sample(0, 1.0), _sample(0, 2.0), _sample(1, 3.0),
        ]
        assert measure_samples_per_session(samples) == pytest.approx(1.5)
