"""Unit tests for KeyedJaggedTensor."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import JaggedTensor, KeyedJaggedTensor


def make_kjt():
    # The Figure 5 batch from the paper.
    rows = [
        {"a": [1, 2], "b": [3, 4, 5], "c": [7, 8], "d": [9]},
        {"b": [4, 5, 6], "c": [7, 8], "d": [9]},
        {"a": [1, 2], "b": [3, 4, 5], "c": [10], "d": [11]},
    ]
    return KeyedJaggedTensor.from_rows(rows)


class TestConstruction:
    def test_from_rows_keys_discovered_in_order(self):
        kjt = make_kjt()
        assert kjt.keys == ["a", "b", "c", "d"]
        assert kjt.batch_size == 3

    def test_missing_key_becomes_empty_row(self):
        kjt = make_kjt()
        assert kjt["a"].to_lists() == [[1, 2], [], [1, 2]]

    def test_figure5_kjt_slices(self):
        kjt = make_kjt()
        np.testing.assert_array_equal(kjt["a"].values, [1, 2, 1, 2])
        np.testing.assert_array_equal(kjt["a"].offsets, [0, 2, 2, 4])

    def test_explicit_keys_subset(self):
        rows = [{"a": [1], "b": [2]}]
        kjt = KeyedJaggedTensor.from_rows(rows, keys=["b"])
        assert kjt.keys == ["b"]

    def test_empty_tensors_rejected(self):
        with pytest.raises(ValueError):
            KeyedJaggedTensor({})

    def test_mismatched_batch_sizes_rejected(self):
        with pytest.raises(ValueError):
            KeyedJaggedTensor(
                {
                    "a": JaggedTensor.from_lists([[1]]),
                    "b": JaggedTensor.from_lists([[1], [2]]),
                }
            )

    def test_from_rows_no_keys_rejected(self):
        with pytest.raises(ValueError):
            KeyedJaggedTensor.from_rows([{}, {}])


class TestAccess:
    def test_getitem_and_contains(self):
        kjt = make_kjt()
        assert "a" in kjt
        assert "z" not in kjt
        assert kjt["b"].to_lists()[1] == [4, 5, 6]

    def test_iter_and_items(self):
        kjt = make_kjt()
        assert list(kjt) == kjt.keys
        assert [k for k, _ in kjt.items()] == kjt.keys

    def test_total_values(self):
        kjt = make_kjt()
        assert kjt.total_values == 4 + 9 + 5 + 3

    def test_select_subset(self):
        kjt = make_kjt()
        sub = kjt.select(["c", "d"])
        assert sub.keys == ["c", "d"]
        assert sub.batch_size == 3

    def test_select_missing_raises(self):
        with pytest.raises(KeyError):
            make_kjt().select(["nope"])

    def test_to_row_dicts_round_trip(self):
        rows = [
            {"a": [1, 2], "b": [3]},
            {"a": [], "b": [4, 5]},
        ]
        kjt = KeyedJaggedTensor.from_rows(rows)
        got = kjt.to_row_dicts()
        assert got == [
            {"a": [1, 2], "b": [3]},
            {"a": [], "b": [4, 5]},
        ]

    def test_equality(self):
        assert make_kjt() == make_kjt()
        other = KeyedJaggedTensor.from_rows([{"a": [1]}])
        assert make_kjt() != other
        assert make_kjt().__eq__(3) is NotImplemented

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(make_kjt())

    def test_nbytes_sums_keys(self):
        kjt = make_kjt()
        assert kjt.nbytes == sum(kjt[k].nbytes for k in kjt.keys)


@st.composite
def row_batches(draw):
    keys = draw(
        st.lists(
            st.sampled_from(["f1", "f2", "f3", "f4"]),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    n = draw(st.integers(min_value=1, max_value=12))
    rows = [
        {
            k: draw(
                st.lists(st.integers(min_value=0, max_value=99), max_size=6)
            )
            for k in keys
        }
        for _ in range(n)
    ]
    return rows, keys


@given(row_batches())
def test_property_row_dict_round_trip(batch):
    rows, keys = batch
    kjt = KeyedJaggedTensor.from_rows(rows, keys=keys)
    assert kjt.to_row_dicts() == [{k: list(r[k]) for k in keys} for r in rows]
