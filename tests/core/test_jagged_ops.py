"""Unit and property tests for the jagged kernels (O6 and pooling)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    JaggedTensor,
    dense_index_select,
    expand_pooled,
    gather_ranges,
    jagged_elementwise_sum,
    jagged_index_select,
    segment_max,
    segment_mean,
    segment_sum,
)


class TestJaggedIndexSelect:
    def test_identity(self):
        jt = JaggedTensor.from_lists([[1, 2], [3], []])
        out = jagged_index_select(jt, np.arange(3))
        assert out == jt

    def test_gather_with_repeats(self):
        jt = JaggedTensor.from_lists([[1, 2], [3], [4, 5, 6]])
        out = jagged_index_select(jt, np.array([2, 0, 0]))
        assert out.to_lists() == [[4, 5, 6], [1, 2], [1, 2]]

    def test_empty_selection(self):
        jt = JaggedTensor.from_lists([[1, 2]])
        out = jagged_index_select(jt, np.array([], dtype=np.int64))
        assert out.num_rows == 0

    def test_select_empty_rows(self):
        jt = JaggedTensor.from_lists([[], [1], []])
        out = jagged_index_select(jt, np.array([0, 2, 1]))
        assert out.to_lists() == [[], [], [1]]

    def test_out_of_range_raises(self):
        jt = JaggedTensor.from_lists([[1]])
        with pytest.raises(IndexError):
            jagged_index_select(jt, np.array([1]))
        with pytest.raises(IndexError):
            jagged_index_select(jt, np.array([-1]))

    def test_2d_indices_rejected(self):
        jt = JaggedTensor.from_lists([[1]])
        with pytest.raises(ValueError):
            gather_ranges(jt.values, jt.offsets, np.zeros((1, 1), dtype=int))

    def test_matches_dense_baseline(self):
        jt = JaggedTensor.from_lists([[1, 2, 3], [], [4], [5, 6]])
        idx = np.array([3, 3, 0, 2, 1])
        assert jagged_index_select(jt, idx) == dense_index_select(jt, idx)

    def test_dense_baseline_all_empty(self):
        jt = JaggedTensor.empty(4)
        idx = np.array([1, 2])
        out = dense_index_select(jt, idx)
        assert out.num_rows == 2
        assert out.total_values == 0


@given(
    st.lists(
        st.lists(st.integers(min_value=-100, max_value=100), max_size=5),
        min_size=1,
        max_size=10,
    ),
    st.data(),
)
def test_property_jagged_equals_dense_index_select(rows, data):
    """O6's kernel must agree with the pad-then-gather baseline everywhere."""
    jt = JaggedTensor.from_lists(rows)
    idx = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(rows) - 1), max_size=15
        )
    )
    idx = np.asarray(idx, dtype=np.int64)
    assert jagged_index_select(jt, idx) == dense_index_select(jt, idx)


class TestSegmentReductions:
    def test_segment_sum_2d(self):
        acts = np.arange(12, dtype=np.float64).reshape(6, 2)
        offsets = np.array([0, 2, 2, 6])
        out = segment_sum(acts, offsets)
        np.testing.assert_allclose(out, [[2, 4], [0, 0], [28, 32]])

    def test_segment_sum_1d(self):
        out = segment_sum(np.array([1.0, 2.0, 3.0]), np.array([0, 1, 3]))
        np.testing.assert_allclose(out, [1.0, 5.0])

    def test_segment_mean_handles_empty(self):
        acts = np.array([[2.0], [4.0]])
        out = segment_mean(acts, np.array([0, 2, 2]))
        np.testing.assert_allclose(out, [[3.0], [0.0]])

    def test_segment_max(self):
        acts = np.array([[1.0, 9.0], [5.0, 2.0], [3.0, 3.0]])
        out = segment_max(acts, np.array([0, 2, 3]))
        np.testing.assert_allclose(out, [[5.0, 9.0], [3.0, 3.0]])

    def test_segment_max_empty_segment_zero(self):
        acts = np.array([[7.0]])
        out = segment_max(acts, np.array([0, 0, 1]))
        np.testing.assert_allclose(out, [[0.0], [7.0]])

    def test_segment_max_all_empty(self):
        out = segment_max(np.empty((0, 3)), np.array([0, 0, 0]))
        np.testing.assert_allclose(out, np.zeros((2, 3)))

    def test_mismatched_rows_raise(self):
        with pytest.raises(ValueError):
            segment_sum(np.zeros((3, 1)), np.array([0, 2]))

    def test_no_empty_nonempty_merge(self):
        # empty segment between two non-empty ones must stay zero
        acts = np.array([[1.0], [2.0], [3.0]])
        out = segment_max(acts, np.array([0, 1, 1, 3]))
        np.testing.assert_allclose(out, [[1.0], [0.0], [3.0]])


@given(
    st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=8),
    st.integers(min_value=1, max_value=4),
)
def test_property_segment_sum_matches_loop(lengths, dim):
    """Vectorized segment_sum equals a per-segment Python-loop reference."""
    rng = np.random.default_rng(0)
    total = sum(lengths)
    acts = rng.normal(size=(total, dim))
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    got = segment_sum(acts, offsets)
    for i, ln in enumerate(lengths):
        ref = acts[offsets[i] : offsets[i + 1]].sum(axis=0)
        np.testing.assert_allclose(got[i], ref)


class TestExpandPooled:
    def test_expand(self):
        pooled = np.array([[24.0], [21.0]])
        out = expand_pooled(pooled, np.array([0, 0, 1]))
        np.testing.assert_allclose(out, [[24.0], [24.0], [21.0]])

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            expand_pooled(np.zeros((1, 2)), np.array([1]))

    def test_empty_lookup(self):
        out = expand_pooled(np.zeros((2, 3)), np.array([], dtype=np.int64))
        assert out.shape == (0, 3)


class TestJaggedElementwiseSum:
    def test_paper_example(self):
        # §5: element-wise sum across grouped features c and d is the
        # motivating compute; here same-structure tensors sum values.
        x = JaggedTensor.from_lists([[1, 2], [3]])
        y = JaggedTensor.from_lists([[10, 20], [30]])
        out = jagged_elementwise_sum([x, y])
        assert out.to_lists() == [[11, 22], [33]]

    def test_structure_mismatch_raises(self):
        x = JaggedTensor.from_lists([[1, 2]])
        y = JaggedTensor.from_lists([[1], [2]])
        with pytest.raises(ValueError):
            jagged_elementwise_sum([x, y])

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            jagged_elementwise_sum([])

    def test_single_tensor(self):
        x = JaggedTensor.from_lists([[5]])
        assert jagged_elementwise_sum([x]).to_lists() == [[5]]
