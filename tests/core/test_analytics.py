"""Tests for the DedupeFactor analytical model (§4.2) and §7 heuristic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    DEFAULT_DEDUPE_THRESHOLD,
    FeatureDedupStats,
    JaggedTensor,
    dedupe_factor,
    dedupe_len,
    measured_dedupe_factor,
    select_features_to_dedup,
)


class TestPaperWorkedExample:
    def test_section_4_2_example(self):
        """B = S = 3, l(b) = 3, d(b) = 0.5 -> DedupeLen 6, factor 1.5."""
        assert dedupe_len(3, 3, 3, 0.5) == pytest.approx(6.0)
        assert dedupe_factor(3, 3, 3, 0.5) == pytest.approx(1.5)

    def test_no_duplication(self):
        assert dedupe_factor(10, 4096, 16.5, 0.0) == pytest.approx(1.0)

    def test_always_duplicated_limit(self):
        # d = 1: every session keeps one copy -> factor S.
        assert dedupe_factor(10, 4096, 16.5, 1.0) == pytest.approx(16.5)

    def test_single_sample_session(self):
        assert dedupe_factor(10, 4096, 1.0, 0.9) == pytest.approx(1.0)


class TestValidation:
    def test_bad_probability(self):
        with pytest.raises(ValueError):
            dedupe_len(1, 1, 2, 1.5)
        with pytest.raises(ValueError):
            dedupe_len(1, 1, 2, -0.1)

    def test_bad_session_count(self):
        with pytest.raises(ValueError):
            dedupe_len(1, 1, 0.5, 0.5)

    def test_negative_sizes(self):
        with pytest.raises(ValueError):
            dedupe_len(-1, 1, 2, 0.5)
        with pytest.raises(ValueError):
            dedupe_len(1, -1, 2, 0.5)

    def test_zero_total_is_factor_one(self):
        assert dedupe_factor(0, 0, 2, 0.5) == 1.0


@given(
    st.floats(min_value=0.1, max_value=1000),
    st.integers(min_value=1, max_value=10000),
    st.floats(min_value=1.0, max_value=100.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_property_factor_bounds(length, b, s, d):
    """1 <= DedupeFactor <= S always, monotone in d."""
    f = dedupe_factor(length, b, s, d)
    assert 1.0 - 1e-9 <= f <= s + 1e-9
    if d < 0.99:
        assert dedupe_factor(length, b, s, min(1.0, d + 0.01)) >= f - 1e-12


@given(
    st.integers(min_value=1, max_value=20),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_property_model_matches_measurement_deterministic(s, d_rounded):
    """On a synthetic batch built exactly to the model's assumptions
    (every session has S samples, a fraction d of adjacent rows repeat),
    the measured dedupe factor matches the analytical one."""
    # Build a batch of `sessions` sessions with s samples each; within a
    # session, value changes happen deterministically at evenly spaced rows
    # to realize duplicate-probability d without sampling noise.
    sessions = 40
    d = round(d_rounded * (s - 1)) / (s - 1) if s > 1 else 0.0
    rows = []
    next_id = 0
    for _ in range(sessions):
        changes = round(d * (s - 1))  # adjacent pairs that repeat
        keeps = s - 1 - changes
        next_id += 1
        current = next_id
        # first `changes` transitions repeat, remaining transitions change
        rows.append([current])
        for t in range(s - 1):
            if t >= changes:
                next_id += 1
                current = next_id
            rows.append([current])
    jt = JaggedTensor.from_lists(rows)
    measured = measured_dedupe_factor(jt)
    expected = dedupe_factor(1, len(rows), s, d)
    assert measured == pytest.approx(expected, rel=1e-9)


class TestSelection:
    def test_threshold_filtering_and_order(self):
        stats = [
            FeatureDedupStats("low", 10, 0.1),
            FeatureDedupStats("high", 10, 0.95),
            FeatureDedupStats("mid", 10, 0.6),
        ]
        chosen = select_features_to_dedup(stats, 4096, 16.5)
        assert chosen == ["high", "mid"]

    def test_custom_threshold(self):
        stats = [FeatureDedupStats("f", 10, 0.6)]
        assert select_features_to_dedup(stats, 4096, 16.5, threshold=10.0) == []

    def test_default_threshold_is_paper_value(self):
        assert DEFAULT_DEDUPE_THRESHOLD == 1.5

    def test_stats_factor_method(self):
        s = FeatureDedupStats("f", 3, 0.5)
        assert s.factor(3, 3) == pytest.approx(1.5)

    def test_tie_broken_by_name(self):
        stats = [
            FeatureDedupStats("b", 5, 0.9),
            FeatureDedupStats("a", 5, 0.9),
        ]
        assert select_features_to_dedup(stats, 64, 8) == ["a", "b"]
