"""Unit tests for JaggedTensor and offsets helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    JaggedTensor,
    lengths_from_offsets,
    offsets_from_lengths,
)


class TestOffsetsHelpers:
    def test_offsets_from_lengths_basic(self):
        np.testing.assert_array_equal(
            offsets_from_lengths([2, 0, 3]), [0, 2, 2, 5]
        )

    def test_offsets_from_lengths_empty(self):
        np.testing.assert_array_equal(offsets_from_lengths([]), [0])

    def test_round_trip(self):
        lengths = np.array([3, 1, 0, 7])
        np.testing.assert_array_equal(
            lengths_from_offsets(offsets_from_lengths(lengths)), lengths
        )

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            offsets_from_lengths([1, -1])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            offsets_from_lengths(np.zeros((2, 2)))

    def test_empty_offsets_rejected(self):
        with pytest.raises(ValueError):
            lengths_from_offsets(np.array([], dtype=np.int64))


class TestJaggedTensorConstruction:
    def test_from_lists(self):
        jt = JaggedTensor.from_lists([[1, 2], [], [3]])
        assert jt.num_rows == 3
        assert jt.total_values == 3
        np.testing.assert_array_equal(jt.values, [1, 2, 3])
        np.testing.assert_array_equal(jt.offsets, [0, 2, 2, 3])

    def test_from_lists_empty_batch(self):
        jt = JaggedTensor.from_lists([])
        assert jt.num_rows == 0
        assert jt.total_values == 0

    def test_empty_constructor(self):
        jt = JaggedTensor.empty(5)
        assert jt.num_rows == 5
        assert all(len(jt.row(i)) == 0 for i in range(5))

    def test_rejects_2d_values(self):
        with pytest.raises(ValueError):
            JaggedTensor(np.zeros((2, 2)), np.array([0, 2, 4]))

    def test_rejects_bad_first_offset(self):
        with pytest.raises(ValueError):
            JaggedTensor(np.arange(3), np.array([1, 3]))

    def test_rejects_mismatched_last_offset(self):
        with pytest.raises(ValueError):
            JaggedTensor(np.arange(3), np.array([0, 2]))

    def test_rejects_decreasing_offsets(self):
        with pytest.raises(ValueError):
            JaggedTensor(np.arange(3), np.array([0, 2, 1, 3]))

    def test_rejects_empty_offsets(self):
        with pytest.raises(ValueError):
            JaggedTensor(np.arange(0), np.array([], dtype=np.int64))


class TestJaggedTensorAccess:
    def test_row_views(self):
        jt = JaggedTensor.from_lists([[1, 2], [3, 4, 5], [7, 8]])
        np.testing.assert_array_equal(jt.row(1), [3, 4, 5])

    def test_row_out_of_range(self):
        jt = JaggedTensor.from_lists([[1]])
        with pytest.raises(IndexError):
            jt.row(1)
        with pytest.raises(IndexError):
            jt.row(-1)

    def test_lengths(self):
        jt = JaggedTensor.from_lists([[1, 2], [], [3]])
        np.testing.assert_array_equal(jt.lengths, [2, 0, 1])

    def test_to_lists_round_trip(self):
        rows = [[1, 2], [], [3, 4, 5]]
        assert JaggedTensor.from_lists(rows).to_lists() == rows

    def test_to_dense_padding(self):
        jt = JaggedTensor.from_lists([[1, 2], [3]])
        np.testing.assert_array_equal(jt.to_dense(), [[1, 2], [3, 0]])

    def test_to_dense_custom_pad(self):
        jt = JaggedTensor.from_lists([[1], []])
        np.testing.assert_array_equal(jt.to_dense(pad_value=-1), [[1], [-1]])

    def test_to_dense_all_empty(self):
        jt = JaggedTensor.empty(3)
        assert jt.to_dense().shape == (3, 0)

    def test_len_and_repr(self):
        jt = JaggedTensor.from_lists([[1], [2, 3]])
        assert len(jt) == 2
        assert "num_rows=2" in repr(jt)

    def test_nbytes_counts_both_slices(self):
        jt = JaggedTensor.from_lists([[1, 2], [3]])
        assert jt.nbytes == jt.values.nbytes + jt.offsets.nbytes

    def test_equality(self):
        a = JaggedTensor.from_lists([[1, 2], [3]])
        b = JaggedTensor.from_lists([[1, 2], [3]])
        c = JaggedTensor.from_lists([[1, 2], [4]])
        assert a == b
        assert a != c
        assert a.__eq__(42) is NotImplemented

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(JaggedTensor.from_lists([[1]]))


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=10**9), max_size=8),
        max_size=20,
    )
)
def test_property_round_trip(rows):
    """from_lists -> to_lists is the identity for any list-of-lists."""
    jt = JaggedTensor.from_lists(rows)
    assert jt.to_lists() == rows
    np.testing.assert_array_equal(jt.lengths, [len(r) for r in rows])


@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=30)
)
def test_property_offsets_lengths_inverse(lengths):
    offsets = offsets_from_lengths(lengths)
    assert offsets[0] == 0
    assert offsets[-1] == sum(lengths)
    np.testing.assert_array_equal(lengths_from_offsets(offsets), lengths)
