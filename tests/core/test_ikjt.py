"""Tests for IKJT: the Figure 5 worked example plus lossless round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    InverseKeyedJaggedTensor,
    JaggedTensor,
    KeyedJaggedTensor,
    dedup_grouped_rows,
    dedup_rows,
)


def figure5_kjt():
    rows = [
        {"a": [1, 2], "b": [3, 4, 5], "c": [7, 8], "d": [9]},
        {"b": [4, 5, 6], "c": [7, 8], "d": [9]},
        {"a": [1, 2], "b": [3, 4, 5], "c": [10], "d": [11]},
    ]
    return KeyedJaggedTensor.from_rows(rows)


class TestFigure5:
    """The paper's worked example, asserted slice by slice."""

    def test_feature_b_single_key_ikjt(self):
        ikjt = InverseKeyedJaggedTensor.from_kjt(figure5_kjt(), ["b"])
        np.testing.assert_array_equal(ikjt["b"].values, [3, 4, 5, 4, 5, 6])
        np.testing.assert_array_equal(ikjt["b"].offsets, [0, 3, 6])
        np.testing.assert_array_equal(ikjt.inverse_lookup, [0, 1, 0])

    def test_grouped_c_d(self):
        ikjt = InverseKeyedJaggedTensor.from_kjt(figure5_kjt(), ["c", "d"])
        np.testing.assert_array_equal(ikjt["c"].values, [7, 8, 10])
        np.testing.assert_array_equal(ikjt["c"].offsets, [0, 2, 3])
        np.testing.assert_array_equal(ikjt["d"].values, [9, 11])
        np.testing.assert_array_equal(ikjt["d"].offsets, [0, 1, 2])
        np.testing.assert_array_equal(ikjt.inverse_lookup, [0, 0, 1])

    def test_round_trip_restores_kjt(self):
        kjt = figure5_kjt()
        for keys in (["a"], ["b"], ["c", "d"]):
            ikjt = InverseKeyedJaggedTensor.from_kjt(kjt, keys)
            assert ikjt.to_kjt() == kjt.select(keys)

    def test_dedupe_factor_feature_a(self):
        # a: rows [1,2], [], [1,2] -> 4 original values, 2 after dedup.
        ikjt = InverseKeyedJaggedTensor.from_kjt(figure5_kjt(), ["a"])
        assert ikjt.dedupe_factor() == pytest.approx(2.0)

    def test_wire_bytes_exclude_inverse_lookup(self):
        ikjt = InverseKeyedJaggedTensor.from_kjt(figure5_kjt(), ["c", "d"])
        assert ikjt.wire_nbytes == ikjt.nbytes - ikjt.inverse_lookup.nbytes


class TestGroupedInvariant:
    def test_unsynchronized_rows_not_deduped(self):
        """§4.2: if grouped features are not synchronously updated, the
        affected rows must stay un-deduplicated."""
        rows = [
            {"x": [1], "y": [5]},
            {"x": [1], "y": [6]},  # x repeats but y changed -> no merge
            {"x": [1], "y": [5]},  # both match row 0 -> merge
        ]
        kjt = KeyedJaggedTensor.from_rows(rows)
        ikjt = InverseKeyedJaggedTensor.from_kjt(kjt, ["x", "y"])
        assert ikjt.num_unique == 2
        np.testing.assert_array_equal(ikjt.inverse_lookup, [0, 1, 0])
        assert ikjt.to_kjt() == kjt

    def test_group_dedup_weaker_than_single(self):
        rows = [
            {"x": [1], "y": [5]},
            {"x": [1], "y": [6]},
        ]
        kjt = KeyedJaggedTensor.from_rows(rows)
        solo = InverseKeyedJaggedTensor.from_kjt(kjt, ["x"])
        grouped = InverseKeyedJaggedTensor.from_kjt(kjt, ["x", "y"])
        assert solo.num_unique == 1
        assert grouped.num_unique == 2


class TestValidation:
    def test_empty_keys_rejected(self):
        with pytest.raises(ValueError):
            InverseKeyedJaggedTensor.from_kjt(figure5_kjt(), [])

    def test_no_tensors_rejected(self):
        with pytest.raises(ValueError):
            InverseKeyedJaggedTensor({}, np.array([0]))

    def test_mismatched_unique_counts_rejected(self):
        with pytest.raises(ValueError):
            InverseKeyedJaggedTensor(
                {
                    "a": JaggedTensor.from_lists([[1]]),
                    "b": JaggedTensor.from_lists([[1], [2]]),
                },
                np.array([0]),
            )

    def test_out_of_range_inverse_rejected(self):
        with pytest.raises(ValueError):
            InverseKeyedJaggedTensor(
                {"a": JaggedTensor.from_lists([[1]])}, np.array([0, 1])
            )

    def test_2d_inverse_rejected(self):
        with pytest.raises(ValueError):
            InverseKeyedJaggedTensor(
                {"a": JaggedTensor.from_lists([[1]])}, np.zeros((1, 1))
            )

    def test_unhashable_and_eq(self):
        a = InverseKeyedJaggedTensor.from_kjt(figure5_kjt(), ["a"])
        b = InverseKeyedJaggedTensor.from_kjt(figure5_kjt(), ["a"])
        assert a == b
        assert a.__eq__(1) is NotImplemented
        with pytest.raises(TypeError):
            hash(a)
        assert "dedupe_factor" in repr(a)


class TestDedupRows:
    def test_single(self):
        jt = JaggedTensor.from_lists([[1, 2], [3], [1, 2], [3], [1, 2]])
        uniq, inv = dedup_rows(jt)
        np.testing.assert_array_equal(uniq, [0, 1])
        np.testing.assert_array_equal(inv, [0, 1, 0, 1, 0])

    def test_empty_rows_are_equal(self):
        jt = JaggedTensor.from_lists([[], [], [1]])
        uniq, inv = dedup_rows(jt)
        np.testing.assert_array_equal(uniq, [0, 2])
        np.testing.assert_array_equal(inv, [0, 0, 1])

    def test_grouped_validations(self):
        with pytest.raises(ValueError):
            dedup_grouped_rows([])
        with pytest.raises(ValueError):
            dedup_grouped_rows(
                [
                    JaggedTensor.from_lists([[1]]),
                    JaggedTensor.from_lists([[1], [2]]),
                ]
            )

    def test_reconstruction_identity(self):
        jt = JaggedTensor.from_lists([[5], [5], [6], [5]])
        uniq, inv = dedup_rows(jt)
        rebuilt = [jt.row(u).tolist() for u in uniq]
        assert [rebuilt[i] for i in inv] == jt.to_lists()


@st.composite
def kjt_batches(draw):
    n_keys = draw(st.integers(min_value=1, max_value=3))
    keys = [f"f{i}" for i in range(n_keys)]
    n = draw(st.integers(min_value=1, max_value=16))
    # Small value alphabet to force duplicate collisions.
    rows = [
        {
            k: draw(
                st.lists(st.integers(min_value=0, max_value=3), max_size=4)
            )
            for k in keys
        }
        for _ in range(n)
    ]
    return KeyedJaggedTensor.from_rows(rows, keys=keys), keys


@settings(max_examples=60)
@given(kjt_batches())
def test_property_ikjt_round_trip_lossless(batch):
    """IKJT -> KJT must restore the exact original batch for any grouping."""
    kjt, keys = batch
    ikjt = InverseKeyedJaggedTensor.from_kjt(kjt, keys)
    assert ikjt.to_kjt() == kjt.select(keys)
    # dedup never expands
    assert ikjt.num_unique <= kjt.batch_size
    assert ikjt.dedupe_factor() >= 1.0


@settings(max_examples=60)
@given(kjt_batches())
def test_property_inverse_lookup_first_occurrence(batch):
    """inverse_lookup indices appear in first-occurrence order: the first
    time a unique id appears equals the number of distinct ids before it."""
    kjt, keys = batch
    ikjt = InverseKeyedJaggedTensor.from_kjt(kjt, keys)
    seen = set()
    for idx in ikjt.inverse_lookup:
        if idx not in seen:
            assert idx == len(seen)
            seen.add(int(idx))
