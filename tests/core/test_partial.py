"""Tests for partial IKJTs (§7) — shift-aware deduplication."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    JaggedTensor,
    KeyedJaggedTensor,
    PartialJaggedTensor,
    PartialKeyedJaggedTensor,
)


class TestPaperExample:
    def test_figure5_feature_b_partial(self):
        """§7: b = [3,4,5]/[4,5,6]/[3,4,5] -> values [3,4,5,6] and
        inverse_lookup [[0,3],[1,3],[0,3]]."""
        jt = JaggedTensor.from_lists([[3, 4, 5], [4, 5, 6], [3, 4, 5]])
        pt = PartialJaggedTensor.from_jagged(jt)
        np.testing.assert_array_equal(pt.values, [3, 4, 5, 6])
        np.testing.assert_array_equal(
            pt.inverse_lookup, [[0, 3], [1, 3], [0, 3]]
        )

    def test_partial_beats_exact_on_shifts(self):
        jt = JaggedTensor.from_lists([[3, 4, 5], [4, 5, 6], [3, 4, 5]])
        pt = PartialJaggedTensor.from_jagged(jt)
        # exact dedup stores 6 values (two distinct lists); partial stores 4
        assert pt.total_values == 4
        assert pt.dedupe_factor() == pytest.approx(9 / 4)


class TestRoundTrip:
    def test_lossless(self):
        rows = [[1, 2, 3], [2, 3, 4], [9], [], [1, 2, 3], [3, 4]]
        jt = JaggedTensor.from_lists(rows)
        pt = PartialJaggedTensor.from_jagged(jt)
        assert pt.to_jagged().to_lists() == rows

    def test_empty_batch(self):
        pt = PartialJaggedTensor.from_jagged(JaggedTensor.from_lists([]))
        assert pt.batch_size == 0
        assert pt.total_values == 0
        assert pt.dedupe_factor() == 1.0

    def test_all_empty_rows(self):
        pt = PartialJaggedTensor.from_jagged(JaggedTensor.empty(3))
        assert pt.to_jagged().to_lists() == [[], [], []]

    def test_window_subsumption(self):
        # A row that is an interior window of a stored row adds no values.
        jt = JaggedTensor.from_lists([[1, 2, 3, 4], [2, 3]])
        pt = PartialJaggedTensor.from_jagged(jt)
        assert pt.total_values == 4
        assert pt.to_jagged().to_lists() == [[1, 2, 3, 4], [2, 3]]


class TestValidation:
    def test_bad_lookup_shape(self):
        with pytest.raises(ValueError):
            PartialJaggedTensor(np.arange(3), np.array([0, 3]))

    def test_out_of_bounds_window(self):
        with pytest.raises(ValueError):
            PartialJaggedTensor(np.arange(3), np.array([[1, 3]]))

    def test_nbytes(self):
        jt = JaggedTensor.from_lists([[1, 2]])
        pt = PartialJaggedTensor.from_jagged(jt)
        assert pt.nbytes == pt.values.nbytes + pt.inverse_lookup.nbytes


class TestKeyed:
    def test_from_kjt_round_trip(self):
        rows = [
            {"a": [1, 2], "b": [3, 4, 5]},
            {"a": [2, 3], "b": [4, 5, 6]},
        ]
        kjt = KeyedJaggedTensor.from_rows(rows)
        pkjt = PartialKeyedJaggedTensor.from_kjt(kjt)
        assert pkjt.to_kjt() == kjt
        assert pkjt.keys == ["a", "b"]
        assert pkjt.batch_size == 2
        assert pkjt.dedupe_factor() > 1.0

    def test_getitem(self):
        kjt = KeyedJaggedTensor.from_rows([{"a": [1]}])
        pkjt = PartialKeyedJaggedTensor.from_kjt(kjt)
        assert isinstance(pkjt["a"], PartialJaggedTensor)
        assert pkjt.total_values == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PartialKeyedJaggedTensor({})

    def test_mismatched_batch_rejected(self):
        a = PartialJaggedTensor.from_jagged(JaggedTensor.from_lists([[1]]))
        b = PartialJaggedTensor.from_jagged(
            JaggedTensor.from_lists([[1], [2]])
        )
        with pytest.raises(ValueError):
            PartialKeyedJaggedTensor({"a": a, "b": b})


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=5), max_size=5),
        max_size=12,
    )
)
def test_property_partial_round_trip(rows):
    """Partial dedup is lossless for arbitrary batches."""
    jt = JaggedTensor.from_lists(rows)
    pt = PartialJaggedTensor.from_jagged(jt)
    assert pt.to_jagged().to_lists() == rows
    # and never stores more values than the original
    assert pt.total_values <= jt.total_values
