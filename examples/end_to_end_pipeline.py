"""The full Figure-1 pipeline, baseline vs RecD, side by side.

Runs RM1 through every stage — inference logging, Scribe transport (O1),
ETL join + clustering (O2), DWRF landing on Tectonic, the reader tier
(O3/O4), and distributed training (O5–O7) — and prints a miniature
version of Figure 7's end-to-end comparison.

Run:  python examples/end_to_end_pipeline.py
"""

from repro.datagen import rm1
from repro.pipeline import PipelineConfig, RecDToggles, run_pipeline


def describe(tag: str, res) -> None:
    bd = res.training.mean_breakdown
    t = bd.total or 1.0
    print(f"\n[{tag}]")
    print(f"  samples landed            : {res.samples_landed}")
    print(f"  scribe compression        : {res.scribe_compression:.2f}x")
    print(f"  storage compression       : {res.storage_compression:.2f}x")
    print(
        f"  reader                    : {res.reader_qps:,.0f} samples/cpu-s, "
        f"read {res.reader.read_bytes / 2**20:.1f} MB, "
        f"sent {res.reader.send_bytes / 2**20:.1f} MB"
    )
    print(
        f"  trainer                   : {res.trainer_qps:,.0f} samples/s "
        f"(iteration: emb {bd.emb_lookup / t:.0%}, gemm {bd.gemm / t:.0%}, "
        f"a2a {bd.a2a / t:.0%}, other {bd.other / t:.0%})"
    )


def main() -> None:
    workload = rm1(scale=0.5)
    print(
        f"workload {workload.name}: "
        f"{len(workload.schema.sparse)} sparse features, "
        f"{len(workload.dedup_groups)} dedup groups, "
        f"batch {workload.baseline_batch_size} -> {workload.recd_batch_size}"
    )

    base = run_pipeline(
        PipelineConfig(
            workload=workload,
            toggles=RecDToggles.baseline(),
            num_sessions=200,
            train_batches=3,
        )
    )
    describe("baseline", base)

    recd = run_pipeline(
        PipelineConfig(
            workload=workload,
            toggles=RecDToggles.full(),
            num_sessions=200,
            train_batches=3,
        )
    )
    describe("RecD (O1-O7)", recd)

    print("\n== end-to-end gains (Fig 7 shape) ==")
    print(f"  trainer throughput : {recd.trainer_qps / base.trainer_qps:.2f}x  (paper RM1: 2.48x)")
    print(f"  reader throughput  : {recd.reader_qps / base.reader_qps:.2f}x  (paper RM1: 1.79x)")
    print(
        "  storage compression: "
        f"{recd.storage_compression / base.storage_compression:.2f}x  (paper RM1: 3.71x)"
    )
    print(
        "  scribe compression : "
        f"{recd.scribe_compression / base.scribe_compression:.2f}x  (paper: 1.50x)"
    )


if __name__ == "__main__":
    main()
