"""The §7 workflow: deciding which features to deduplicate.

An ML engineer characterizes their dataset's features (how often each
value changes, how long the lists are), applies the DedupeFactor model,
and dedups everything above the 1.5 threshold — then validates the
modeled factors against measured in-batch dedup on a real clustered
trace.

Run:  python examples/feature_selection.py
"""

from repro.core import (
    DEFAULT_DEDUPE_THRESHOLD,
    FeatureDedupStats,
    JaggedTensor,
    dedupe_factor,
    measure_feature_stats,
    measure_samples_per_session,
    measured_dedupe_factor,
    select_features_to_dedup,
)
from repro.datagen import (
    DatasetSchema,
    FeatureKind,
    SparseFeatureSpec,
    TraceConfig,
    generate_partition,
)
from repro.etl import cluster_by_session


def main() -> None:
    # a feature zoo spanning the duplication spectrum
    specs = [
        SparseFeatureSpec("liked_posts", FeatureKind.USER, 50, 0.03),
        SparseFeatureSpec("shared_posts", FeatureKind.USER, 50, 0.01),
        SparseFeatureSpec("watch_history", FeatureKind.USER, 100, 0.10),
        SparseFeatureSpec("recent_searches", FeatureKind.USER, 10, 0.40),
        SparseFeatureSpec("ranked_item", FeatureKind.ITEM, 1, 0.95),
        SparseFeatureSpec("item_tags", FeatureKind.ITEM, 8, 0.90),
    ]
    schema = DatasetSchema(sparse=tuple(specs))
    S, B = 16.5, 1024

    stats = [
        FeatureDedupStats(f.name, f.avg_length, f.d) for f in specs
    ]
    chosen = select_features_to_dedup(stats, B, S)
    print(f"DedupeFactor model at S={S}, B={B} "
          f"(threshold {DEFAULT_DEDUPE_THRESHOLD}):\n")
    print(f"{'feature':<18s} {'d(f)':>6s} {'l(f)':>6s} {'factor':>8s}  dedup?")
    for f in specs:
        factor = dedupe_factor(f.avg_length, B, S, f.d)
        mark = "yes" if f.name in chosen else "no"
        print(f"{f.name:<18s} {f.d:6.2f} {f.avg_length:6d} {factor:8.2f}  {mark}")

    # validate the model against a real clustered trace
    print("\nvalidation on a generated, clustered trace:")
    samples = cluster_by_session(
        generate_partition(schema, 300, TraceConfig(seed=3))
    )
    for f in specs:
        jt = JaggedTensor.from_lists(
            [s.sparse[f.name] for s in samples[:B]]
        )
        measured = measured_dedupe_factor(jt)
        modeled = dedupe_factor(f.avg_length, B, S, f.d)
        print(
            f"  {f.name:<18s} modeled {modeled:6.2f}  measured {measured:6.2f}"
        )

    # in production the schema "truth" is unknown: estimate d(f)/l(f)
    # from logged samples instead, then select
    print("\nonline characterization (no schema truth):")
    est_stats = measure_feature_stats(samples, [f.name for f in specs])
    est_S = measure_samples_per_session(samples)
    est_chosen = select_features_to_dedup(est_stats, B, est_S)
    for s_ in est_stats:
        print(
            f"  {s_.name:<18s} d̂={s_.d:5.2f} l̂={s_.avg_length:6.1f} "
            f"-> {'dedup' if s_.name in est_chosen else 'keep as KJT'}"
        )
    assert set(est_chosen) == set(chosen), "online estimate should agree"

    print(
        "\nengineers start from the model's ranking, then tune by observed "
        "trainer throughput (§7)."
    )


if __name__ == "__main__":
    main()
