"""Fault injection: chaos that never changes a single loss bit.

The paper's shared reader tier serves jobs in a world where reader
workers crash, shards straggle, and jobs get preempted for higher
priorities — yet training results must not depend on any of it.  This
example runs the ``churn`` scenario (two jobs, a mid-run arrival, two
crashes, a straggler, and a preempt/checkpoint/resume cycle) and then
proves the two guarantees the simulator is built around:

1. **Bit-identity** — every job's stitched loss trajectory (the epochs
   before preemption + the resumed tail restored from the
   ``ModelStore``) equals the same job run on a clean, fault-free tier,
   float for float;
2. **Replayability** — rerunning the same seed reproduces the identical
   fault trace and ``SLOReport``, so a chaos run is as debuggable as a
   deterministic test.

What *does* change under faults is the modeled cost surface: the SLO
report shows the wasted CPU the crash redid, the straggler-dilated
rounds, and the queue time the preempted job paid while descheduled.

Run:  python examples/fault_injection.py
"""

from repro.sim import build_scenario

SEED = 7


def main() -> None:
    scenario = build_scenario("churn", seed=SEED, scale=0.2)
    runner = scenario.runner()
    result = runner.run()

    print(f"scenario: {scenario.name} — {scenario.description}\n")
    print("fault trace (as applied):")
    for ev in result.trace:
        extras = {
            k: v
            for k, v in ev.items()
            if k not in ("round", "job", "event")
        }
        print(f"  round {ev['round']}: {ev['event']} {ev['job']} {extras}")

    # Guarantee 1: chaos never touches training results.
    baseline = runner.baseline()
    for name, losses in sorted(result.losses.items()):
        assert losses == baseline[name], f"{name} diverged under faults!"
        print(
            f"  {name}: {len(losses)} losses, bit-identical to clean run"
        )

    # Guarantee 2: the same seed replays to the same fingerprint.
    replay = scenario.runner().run()
    assert replay.fingerprint() == result.fingerprint()
    print("\nreplay of the same seed: identical fingerprint")

    # What faults *do* change: the modeled SLO surface.
    slo = result.slo
    print(
        f"\nSLO under churn: p50 wall {slo.p50_wall_seconds * 1e3:.2f} ms,"
        f" p99 wall {slo.p99_wall_seconds * 1e3:.2f} ms"
    )
    print(
        f"  {slo.crashes} crash(es) wasted "
        f"{slo.wasted_cpu_seconds * 1e3:.2f} ms of reader CPU "
        f"({100 * (1 - slo.useful_cpu_fraction):.1f}% of the total); "
        f"{slo.straggler_shards} straggler shard(s); "
        f"{slo.preemptions} preemption(s)"
    )
    worst = max(slo.jobs, key=lambda j: j.queue_fraction)
    print(
        f"  worst queue share: {worst.job} spent "
        f"{100 * worst.queue_fraction:.1f}% of its in-system wall "
        "waiting (starved or descheduled)"
    )


if __name__ == "__main__":
    main()
