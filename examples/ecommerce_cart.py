"""E-commerce scenario from the paper's introduction and §4.2.

A shopper's session produces many impressions; the "last N items added
to cart" features (item ID + seller ID) only change when the cart does,
so they are duplicated across the session's samples and updated
*synchronously* — the motivating case for grouped IKJTs.

This example builds that workload, trains a small DLRM twice (baseline
KJT path vs full RecD IKJT path), and shows that the math is identical
while the resources are not.

Run:  python examples/ecommerce_cart.py
"""

import numpy as np

from repro.datagen import (
    DatasetSchema,
    DenseFeatureSpec,
    FeatureKind,
    PoolingKind,
    SparseFeatureSpec,
    TraceConfig,
    generate_partition,
)
from repro.etl import cluster_by_session
from repro.reader import DataLoaderConfig, convert_rows
from repro.trainer import DLRM, DLRMConfig, TrainerOptFlags


def build_schema() -> DatasetSchema:
    return DatasetSchema(
        sparse=(
            # the synchronized cart pair -> one grouped IKJT
            SparseFeatureSpec(
                "cart_item_ids",
                kind=FeatureKind.USER,
                avg_length=20,
                change_prob=0.08,
                group="cart",
                pooling=PoolingKind.ATTENTION,
            ),
            SparseFeatureSpec(
                "cart_seller_ids",
                kind=FeatureKind.USER,
                avg_length=20,
                change_prob=0.08,
                group="cart",
                pooling=PoolingKind.ATTENTION,
            ),
            # browsing history — deduplicated alone
            SparseFeatureSpec(
                "viewed_items",
                kind=FeatureKind.USER,
                avg_length=30,
                change_prob=0.15,
                pooling=PoolingKind.SUM,
            ),
            # the candidate item being ranked — not worth deduplicating
            SparseFeatureSpec(
                "candidate_item",
                kind=FeatureKind.ITEM,
                avg_length=1,
                change_prob=0.95,
                pooling=PoolingKind.SUM,
            ),
        ),
        dense=(DenseFeatureSpec("hour_of_day"), DenseFeatureSpec("cart_value")),
    )


def main() -> None:
    schema = build_schema()
    samples = cluster_by_session(
        generate_partition(schema, 120, TraceConfig(seed=7))
    )
    batch_size = 128
    print(f"generated {len(samples)} samples from 120 shopper sessions")

    base_cfg = DataLoaderConfig(
        batch_size=batch_size,
        sparse_features=tuple(schema.sparse_names),
        dense_features=tuple(schema.dense_names),
    )
    recd_cfg = DataLoaderConfig(
        batch_size=batch_size,
        sparse_features=("candidate_item",),
        dedup_sparse_features=(
            ("cart_item_ids", "cart_seller_ids"),  # grouped: synchronized
            ("viewed_items",),
        ),
        dense_features=tuple(schema.dense_names),
    )

    model_cfg = DLRMConfig(
        embedding_dim=16,
        bottom_mlp=(32, 16),
        top_mlp=(32, 1),
        num_dense=2,
        max_table_rows=1000,
        seed=1,
    )
    base_model = DLRM(list(schema.sparse), model_cfg, TrainerOptFlags.baseline())
    recd_model = DLRM(list(schema.sparse), model_cfg, TrainerOptFlags.full())

    print("\nstep  baseline-loss  recd-loss   (identical math, §6.2)")
    for step in range(4):
        rows = samples[step * batch_size : (step + 1) * batch_size]
        base_batch, _ = convert_rows(rows, base_cfg)
        recd_batch, _ = convert_rows(rows, recd_cfg)
        cart = recd_batch.ikjts[0]
        lb = base_model.train_step(base_batch)
        lr = recd_model.train_step(recd_batch)
        print(
            f"{step:4d}  {lb:.6f}      {lr:.6f}   "
            f"cart dedupe factor {cart.dedupe_factor():.1f}x"
        )
        assert np.isclose(lb, lr), "RecD must not change the training math"

    c = {
        "baseline": base_model.counters.as_dict(),
        "recd": recd_model.counters.as_dict(),
    }
    print("\nresources over 4 identical batches:")
    for key in ("emb_lookups", "pooling_flops", "activation_bytes"):
        b, r = c["baseline"][key], c["recd"][key]
        print(f"  {key:18s}: baseline {b:12.0f}  recd {r:12.0f}  ({b / r:.1f}x less)")


if __name__ == "__main__":
    main()
