"""Multi-job sharing: one reader tier vs statically partitioned fleets.

The paper's disaggregated preprocessing tier serves *many* training
jobs from one pool of readers.  This example shows why that beats
giving each job its own statically sized fleet, on two jobs with
deliberately different reader demand:

* **job A** — baseline toggles: the reader pipeline decodes duplicated
  sessions the expensive way (reader-heavy);
* **job B** — full RecD (O1–O7): IKJT readers do a fraction of the
  work (reader-light).

Three deployments of the same 2N workers, same jobs, same batches:

1. **isolated halves** — each job owns a private N-worker fleet (the
   static split a per-job platform would provision).  The reader-heavy
   job straggles while the reader-light job's workers idle.
2. **shared tier** — one ``SharedReaderTier`` of 2N workers with the
   stall-weighted allocation: after the first (evenly split) round the
   scheduler follows observed reader demand and shifts workers from B
   to A, so the tier's per-round wall drops below the static split's.
3. **sequential isolation** — each job alone on the full 2N workers,
   one after the other: what you pay without any sharing at all.

Per-job losses are bit-identical in all three deployments — sharing
moves wall-clock, never training results.

A coda shows the two per-job knobs that compose with sharing since the
``JobSpec``/``Session`` redesign: a scheduling **weight** biasing the
stall-weighted surplus toward a priority job, and **rolling-window
retention** (land → train → age) running *inside* the shared tier with
losses bit-identical to the solo retention run.

Run:  python examples/multi_job_sharing.py
"""

from dataclasses import replace

from repro.datagen import rm1
from repro.pipeline import (
    PipelineConfig,
    RecDToggles,
    run_multi_job,
    run_pipeline,
)

WIDTH = 16  # the shared tier's pooled workers (2N; halves get N each)


def _cfg(**kw) -> PipelineConfig:
    kw.setdefault("workload", rm1(scale=0.25))
    kw.setdefault("num_sessions", 60)
    kw.setdefault("batch_size", 32)
    kw.setdefault("train_batches", 2)
    kw.setdefault("train_epochs", 4)
    kw.setdefault("reader_executor", "inprocess")
    return PipelineConfig(**kw)


def main() -> None:
    job_a = _cfg(toggles=RecDToggles.baseline(), seed=1)  # reader-heavy
    job_b = _cfg(toggles=RecDToggles.full(), seed=2)      # reader-light

    shared = run_multi_job(
        [job_a, job_b], num_readers=WIDTH, names=["A", "B"]
    )
    half_a = run_multi_job([job_a], num_readers=WIDTH // 2, names=["A"])
    half_b = run_multi_job([job_b], num_readers=WIDTH // 2, names=["B"])
    full_a = run_multi_job([job_a], num_readers=WIDTH, names=["A"])
    full_b = run_multi_job([job_b], num_readers=WIDTH, names=["B"])

    print(f"shared tier ({WIDTH} workers, stall-weighted):")
    for rnd in shared.tier.rounds:
        alloc = " ".join(
            f"{name}={w}" for name, w in sorted(rnd.allocation.items())
        )
        print(
            f"  round {rnd.index}: {alloc}  "
            f"wall {rnd.modeled_wall_seconds * 1e3:.2f} ms"
        )

    shared_wall = shared.modeled_wall_seconds
    halves_wall = max(
        half_a.modeled_wall_seconds, half_b.modeled_wall_seconds
    )
    sequential_wall = (
        full_a.modeled_wall_seconds + full_b.modeled_wall_seconds
    )
    print(f"\nshared tier of {WIDTH}        : {shared_wall * 1e3:.2f} ms")
    print(
        f"two isolated fleets of {WIDTH // 2}: {halves_wall * 1e3:.2f} ms "
        "(concurrent, static split)"
    )
    print(
        f"jobs run back to back    : {sequential_wall * 1e3:.2f} ms "
        f"(each alone on {WIDTH})"
    )
    assert shared_wall < halves_wall, "sharing must beat the static split"
    assert shared_wall < sequential_wall

    # sharing never changes training results, only wall-clock
    assert (
        shared.job("A").training.losses == full_a.job("A").training.losses
    )
    assert (
        shared.job("B").training.losses == full_b.job("B").training.losses
    )
    print(
        f"\nsharing saves {100 * (1 - shared_wall / halves_wall):.1f}% "
        "of the static split's wall-clock; per-job losses bit-identical "
        "in every deployment"
    )

    # -- coda: weights and retention compose with sharing ------------------

    weighted = run_multi_job(
        [job_a, job_a], num_readers=WIDTH, names=["vip", "std"],
        weights=[3.0, 1.0],
    )
    rnd = weighted.tier.rounds[1]  # first demand-informed round
    print(
        f"\nweight 3:1 on equal-demand clones -> round 1 allocation "
        f"vip={rnd.allocation['vip']} std={rnd.allocation['std']}"
    )
    assert rnd.allocation["vip"] > rnd.allocation["std"]

    retained = replace(
        job_a, num_partitions=4, retain_partitions=2, train_epochs=3
    )
    mixed = run_multi_job(
        [retained, job_b], num_readers=WIDTH, names=["ret", "B"]
    )
    solo = run_pipeline(retained)
    assert mixed.job("ret").training.losses == solo.training.losses
    assert mixed.job("ret").dropped_partitions == solo.dropped_partitions
    print(
        "retention under sharing: windows "
        f"{mixed.job('ret').epoch_partitions}, dropped "
        f"{mixed.job('ret').dropped_partitions} — losses bit-identical "
        "to the solo retention run"
    )


if __name__ == "__main__":
    main()
