"""Autoscaler convergence: feedback sizing vs the static-sweep optimum.

The reader tier must be wide enough that trainer steps never stall on
decode, and no wider (idle reader machines).  The statically-optimal
width can be found by sweeping fleet widths and checking each one's
modeled reader-stall — but production can't sweep; it has to *converge*.
This example does both on the same reader-bound workload:

1. run once, take the modeled per-epoch reader CPU and trainer step
   time, and sweep the width analytically (reader wall ~ CPU / width)
   to find the smallest width inside the target stall band;
2. run with ``autoscale=True`` and show the ``ScalingTrace`` converging
   to that same width in a couple of epochs, from below (grow) and from
   above (shrink with hysteresis).

Run:  python examples/autoscale_convergence.py
"""

from repro.datagen import rm1
from repro.pipeline import PipelineConfig, RecDToggles, run_pipeline

TARGET_STALL = 0.10


def _cfg(**kw) -> PipelineConfig:
    kw.setdefault("workload", rm1(scale=0.25))
    kw.setdefault("toggles", RecDToggles.baseline())
    kw.setdefault("num_sessions", 150)
    kw.setdefault("seed", 3)
    kw.setdefault("batch_size", 64)
    kw.setdefault("train_batches", None)  # train the whole partition
    kw.setdefault("target_stall", TARGET_STALL)
    return PipelineConfig(**kw)


def static_sweep(max_width: int = 32) -> int:
    """Find the statically-optimal width from one profiled run."""
    res = run_pipeline(_cfg(num_readers=1))
    reader_cpu = res.fleet.merged.cpu.total
    trainer_busy = sum(
        it.iteration_seconds for it in res.training.iterations
    )
    print(
        f"profiled epoch: reader CPU {reader_cpu * 1e3:.1f} ms, "
        f"trainer busy {trainer_busy * 1e3:.1f} ms "
        f"({len(res.training.iterations)} steps)"
    )
    print(f"\n{'width':>5}  {'reader wall':>11}  {'stall':>6}  in band?")
    best = max_width
    for width in range(1, max_width + 1):
        wall = reader_cpu / width
        stall = max(0.0, wall - trainer_busy) / max(wall, trainer_busy)
        ok = stall <= TARGET_STALL
        if ok and width < best:
            best = width
        if width <= 4 or abs(width - best) <= 2 or width == max_width:
            print(
                f"{width:5d}  {wall * 1e3:9.1f}ms  {stall:6.2f}  "
                f"{'yes' if ok else 'no'}"
            )
    print(f"\nstatically-optimal width: {best}")
    return best


def autoscaled_run(initial: int, label: str) -> int:
    """One autoscale=True run; print its ScalingTrace."""
    res = run_pipeline(
        _cfg(num_readers=initial, train_epochs=5, autoscale=True)
    )
    trace = res.scaling
    print(f"\n{label} (initial width {initial}):")
    for d in trace.decisions:
        print(
            f"  epoch {d.epoch}: width {d.width_before:3d}, "
            f"reader-stall {d.reader_stall_fraction:.2f} / "
            f"trainer {d.trainer_stall_fraction:.2f} -> "
            f"{d.action:6s} -> width {d.width_after}"
        )
    print(
        f"  converged at epoch {trace.converged_epoch}, "
        f"final width {trace.final_width}"
    )
    return trace.final_width


def main() -> None:
    optimal = static_sweep()
    from_below = autoscaled_run(1, "autoscale from under-provisioned")
    from_above = autoscaled_run(32, "autoscale from over-provisioned")
    print(
        f"\nstatic optimum {optimal}, autoscaled from below -> "
        f"{from_below}, from above -> {from_above}"
    )


if __name__ == "__main__":
    main()
