"""Quickstart: the IKJT format on the paper's own Figure 5 example.

Builds the 3-row batch from Figure 5, converts it to KJTs and IKJTs,
shows the deduplicated slices, round-trips losslessly, and applies the
Section 4.2 analytical model.

Run:  python examples/quickstart.py
"""

from repro.core import (
    InverseKeyedJaggedTensor,
    KeyedJaggedTensor,
    dedupe_factor,
    dedupe_len,
)


def main() -> None:
    # The batch from Figure 5: three impressions; features a and b repeat
    # across rows 0 and 2, features c and d update synchronously.
    rows = [
        {"a": [1, 2], "b": [3, 4, 5], "c": [7, 8], "d": [9]},
        {"b": [4, 5, 6], "c": [7, 8], "d": [9]},
        {"a": [1, 2], "b": [3, 4, 5], "c": [10], "d": [11]},
    ]
    kjt = KeyedJaggedTensor.from_rows(rows)
    print("KJT (baseline format, duplicates retained)")
    for key in kjt.keys:
        jt = kjt[key]
        print(f"  {key}: values={jt.values.tolist()} offsets={jt.offsets.tolist()}")

    # Single-feature IKJT for b — matches Figure 5's middle panel.
    ikjt_b = InverseKeyedJaggedTensor.from_kjt(kjt, ["b"])
    print("\nIKJT for feature b")
    print(f"  values={ikjt_b['b'].values.tolist()}")
    print(f"  offsets={ikjt_b['b'].offsets.tolist()}")
    print(f"  inverse_lookup={ikjt_b.inverse_lookup.tolist()}")

    # Grouped IKJT for (c, d) — one shared inverse_lookup (Figure 5 right).
    ikjt_cd = InverseKeyedJaggedTensor.from_kjt(kjt, ["c", "d"])
    print("\nGrouped IKJT for features c,d")
    print(f"  c: values={ikjt_cd['c'].values.tolist()}")
    print(f"  d: values={ikjt_cd['d'].values.tolist()}")
    print(f"  shared inverse_lookup={ikjt_cd.inverse_lookup.tolist()}")

    # Lossless: expanding back yields the exact original batch.
    assert ikjt_cd.to_kjt() == kjt.select(["c", "d"])
    print("\nround-trip IKJT -> KJT: exact match ✓")

    # The Section 4.2 analytical model, on the paper's worked example:
    # B = S = 3, l(b) = 3, d(b) = 0.5 -> DedupeLen 6, DedupeFactor 1.5.
    print("\nAnalytical model (§4.2), paper's example:")
    print(f"  DedupeLen(b)    = {dedupe_len(3, 3, 3, 0.5):.0f}   (paper: 6)")
    print(f"  DedupeFactor(b) = {dedupe_factor(3, 3, 3, 0.5):.1f}  (paper: 1.5)")

    # At production-like parameters the factor lands in the paper's 4-15
    # band, which is what makes the end-to-end wins possible.
    f = dedupe_factor(64, 4096, 16.5, 0.95)
    print(f"  DedupeFactor at S=16.5, d=0.95: {f:.1f} (paper band: 4-15)")


if __name__ == "__main__":
    main()
