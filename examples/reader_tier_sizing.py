"""Reader-fleet sizing: RecD's reader wins translate to fewer machines.

The deployed system scales the reader tier to match trainer ingestion
bandwidth (§2.1); because RecD speeds up each reader (Fig 7: 1.79x for
RM1) *and* speeds up the trainers it must feed, the fleet math changes
on both sides.  This example measures both throughputs on a landed
partition, prints the provisioning outcome, then runs a streaming
multi-partition epoch to show where the wall-clock actually goes:
reader-stall (trainers starved) vs trainer-stall (readers ahead).

Run:  python examples/reader_tier_sizing.py
"""

from repro.datagen import rm1
from repro.pipeline import PipelineConfig, RecDToggles, run_pipeline
from repro.pipeline.runner import land_table
from repro.reader import ReaderFleet, readers_required


def main() -> None:
    w = rm1(scale=0.5)

    results = {}
    for name, toggles in [
        ("baseline", RecDToggles.baseline()),
        ("RecD", RecDToggles.full()),
    ]:
        res = run_pipeline(
            PipelineConfig(
                workload=w,
                toggles=toggles,
                num_sessions=200,
                train_batches=2,
            )
        )
        results[name] = res

    print("per-node throughputs:")
    for name, res in results.items():
        print(
            f"  {name:8s}: reader {res.reader_qps:10,.0f} samples/cpu-s, "
            f"trainer {res.trainer_qps:10,.0f} samples/s"
        )

    print("\nreader fleet needed to keep trainers fed (10% headroom):")
    for name, res in results.items():
        plan = readers_required(res.trainer_qps, res.reader_qps)
        print(
            f"  {name:8s}: {plan.num_readers:4d} readers "
            f"(trainers demand {plan.trainer_samples_per_s:,.0f}/s, "
            f"each reader supplies {plan.reader_samples_per_s:,.0f}/s)"
        )

    # run an actual sharded fleet over the RecD partitions: N workers
    # scan disjoint row-range shards and stream batches through bounded
    # prefetch queues, bit-identical to the serial reader's output
    cfg = PipelineConfig(
        workload=w,
        toggles=RecDToggles.full(),
        num_sessions=200,
        num_partitions=2,
    )
    table, _, _, partitions, _ = land_table(cfg)
    plan = readers_required(
        results["RecD"].trainer_qps, results["RecD"].reader_qps
    )
    fleet = ReaderFleet(
        min(plan.num_readers, 8), cfg.dataloader_config(), prefetch_depth=2
    )
    batches = fleet.run_epoch(table, [p.name for p in partitions])
    rep = fleet.report
    merged = rep.merged
    print(
        f"\nfleet epoch over {len(partitions)} partitions: "
        f"{len(rep.workers)} shard workers ({rep.executor_used}) "
        f"processed {merged.samples} samples in {len(batches)} batches; "
        f"modeled wall-clock {rep.modeled_wall_seconds * 1e3:.1f} ms "
        f"(vs {merged.cpu.total * 1e3:.1f} ms single-node CPU); "
        f"queue wait put {rep.queue.put_wait * 1e3:.1f} ms / "
        f"get {rep.queue.get_wait * 1e3:.1f} ms"
    )

    # A/B the streaming hand-off: same batches, same losses — but only
    # the streaming path overlaps reader decode with trainer steps, and
    # only there does OverlapReport show who stalls whom
    print("\nstreaming vs materialized (2 partitions x 2 epochs):")
    for label, streaming in [("streaming", True), ("materialized", False)]:
        res = run_pipeline(
            PipelineConfig(
                workload=w,
                toggles=RecDToggles.full(),
                num_sessions=200,
                num_partitions=2,
                train_epochs=2,
                train_batches=4,
                num_readers=4,
                streaming=streaming,
            )
        )
        ov = res.overlap
        print(
            f"  {label:12s}: {ov.batches} steps in {ov.wall_seconds:.3f}s "
            f"wall — reader-stall {100 * ov.reader_stall_fraction:5.1f}%, "
            f"trainer {100 * ov.trainer_stall_fraction:5.1f}%, "
            f"other {100 * ov.other_fraction:5.1f}% "
            f"(losses fingerprint {sum(res.training.losses):.6f})"
        )


if __name__ == "__main__":
    main()
